package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockSafe guards the mutex discipline the worker pool, result cache, and
// ivoryd drain logic rely on. Four findings, all function-local and
// heuristic (no interprocedural or path-sensitive reasoning):
//
//   - a value (non-pointer) receiver, parameter, result, or assignment
//     whose type contains a sync.Mutex/RWMutex/WaitGroup/Once/Cond —
//     copying the value forks the lock state (go vet's copylocks, kept
//     here so the lint gate is self-contained);
//   - Lock/RLock with no matching Unlock/RUnlock anywhere in the same
//     function, deferred or not;
//   - a return statement between a Lock and its first matching plain
//     (non-deferred) Unlock — the early return leaks the lock;
//   - two Locks of the same receiver expression in the same statement
//     list with no Unlock between them — a guaranteed self-deadlock.
//
// Receivers are matched textually (types.ExprString of the expression
// before .Lock), which is exact for the field-selector chains used in
// this module.
var LockSafe = &Analyzer{
	Name: "locksafe",
	Doc:  "flag mutex copies, lock/unlock imbalance, and double-lock on the same receiver",
	Run:  runLockSafe,
}

func runLockSafe(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			checkLockCopies(pass, fd)
			if fd.Body != nil {
				checkLockBalance(pass, fd)
				checkDoubleLock(pass, fd.Body)
			}
		}
		// Copies can also happen at package level or inside closures;
		// sweep assignments and range clauses everywhere.
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				checkAssignCopiesLock(pass, n)
			case *ast.RangeStmt:
				if n.Value != nil && containsLock(pass.TypeOf(n.Value)) {
					pass.Reportf(n.Value.Pos(),
						"range copies a value containing a lock; iterate by index or over pointers")
				}
			}
			return true
		})
	}
	return nil
}

// checkLockCopies flags lock-bearing value receivers, params, and results.
func checkLockCopies(pass *Pass, fd *ast.FuncDecl) {
	flagField := func(fld *ast.Field, what string) {
		t := pass.TypeOf(fld.Type)
		if _, isPtr := t.(*types.Pointer); isPtr || !containsLock(t) {
			return
		}
		pass.Reportf(fld.Type.Pos(),
			"%s of %s passes a lock by value; use a pointer", what, fd.Name.Name)
	}
	if fd.Recv != nil {
		for _, fld := range fd.Recv.List {
			flagField(fld, "receiver")
		}
	}
	for _, fld := range fd.Type.Params.List {
		flagField(fld, "parameter")
	}
	if fd.Type.Results != nil {
		for _, fld := range fd.Type.Results.List {
			flagField(fld, "result")
		}
	}
}

// checkAssignCopiesLock flags x = y / x := y where the assigned value
// contains a lock and is not a fresh composite literal or address/new.
func checkAssignCopiesLock(pass *Pass, as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, rhs := range as.Rhs {
		switch rhs.(type) {
		case *ast.CompositeLit, *ast.UnaryExpr, *ast.CallExpr:
			continue // fresh value, address-of, or constructor: no shared state yet
		}
		if containsLock(pass.TypeOf(rhs)) {
			pass.Reportf(as.Lhs[i].Pos(),
				"assignment copies a value containing a lock; use a pointer")
		}
	}
}

// containsLock reports whether t (after peeling named types) is or embeds
// a sync lock type. Pointers do not propagate: *T shares, not copies.
func containsLock(t types.Type) bool {
	return lockIn(t, 0)
}

func lockIn(t types.Type, depth int) bool {
	if t == nil || depth > 10 {
		return false
	}
	if named, ok := t.(*types.Named); ok {
		if obj := named.Obj(); obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			switch obj.Name() {
			case "Mutex", "RWMutex", "WaitGroup", "Once", "Cond", "Pool", "Map":
				return true
			}
		}
		return lockIn(named.Underlying(), depth+1)
	}
	if st, ok := t.(*types.Struct); ok {
		for i := 0; i < st.NumFields(); i++ {
			if lockIn(st.Field(i).Type(), depth+1) {
				return true
			}
		}
	}
	if arr, ok := t.(*types.Array); ok {
		return lockIn(arr.Elem(), depth+1)
	}
	return false
}

// lockEvent is one Lock/Unlock call site inside a function.
type lockEvent struct {
	call     *ast.CallExpr
	recv     string // receiver path, e.g. "p.mu"
	read     bool   // RLock/RUnlock
	acquire  bool   // Lock/RLock vs Unlock/RUnlock
	deferred bool
}

// lockEvents collects all sync lock-method calls in body, in source order.
func lockEvents(pass *Pass, body *ast.BlockStmt) []lockEvent {
	var evs []lockEvent
	var inDefer *ast.CallExpr
	ast.Inspect(body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok {
			inDefer = d.Call
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := pass.CalleeFunc(call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		ev := lockEvent{call: call, recv: types.ExprString(sel.X), deferred: call == inDefer}
		switch fn.Name() {
		case "Lock":
			ev.acquire = true
		case "RLock":
			ev.acquire, ev.read = true, true
		case "Unlock":
		case "RUnlock":
			ev.read = true
		default:
			return true
		}
		evs = append(evs, ev)
		return true
	})
	return evs
}

// checkLockBalance reports locks never released and returns that leak a
// held lock past a non-deferred unlock.
func checkLockBalance(pass *Pass, fd *ast.FuncDecl) {
	evs := lockEvents(pass, fd.Body)
	type key struct {
		recv string
		read bool
	}
	for i, ev := range evs {
		if !ev.acquire {
			continue
		}
		k := key{ev.recv, ev.read}
		// Find a matching release later in the function (deferred
		// releases registered earlier also count: defer runs at exit).
		hasDefer := false
		var release *lockEvent
		for j := range evs {
			o := &evs[j]
			if o.acquire || (key{o.recv, o.read}) != k {
				continue
			}
			if o.deferred {
				hasDefer = true
			} else if j > i && release == nil {
				release = o
			}
		}
		if !hasDefer && release == nil {
			pass.Reportf(ev.call.Pos(),
				"%s is %sed but never released in %s",
				ev.recv, lockName(ev.read), fd.Name.Name)
			continue
		}
		if !hasDefer && release != nil {
			reportReturnsBetween(pass, fd, ev.call.End(), release.call.Pos(), ev.recv)
		}
	}
}

func lockName(read bool) string {
	if read {
		return "RLock"
	}
	return "Lock"
}

// reportReturnsBetween flags return statements positioned between a Lock
// and its first plain Unlock when no defer covers the receiver: the early
// return exits with the lock held.
func reportReturnsBetween(pass *Pass, fd *ast.FuncDecl, lo, hi token.Pos, recv string) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // a closure's returns don't exit this function
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || ret.Pos() <= lo || ret.Pos() >= hi {
			return true
		}
		pass.Reportf(ret.Pos(),
			"return leaves %s locked: the Unlock below is not deferred and this path skips it", recv)
		return true
	})
}

// checkDoubleLock walks every statement list and flags a second Lock of
// the same receiver with no intervening Unlock in that list. The scan is
// per-BlockStmt so mutually exclusive branches never alias; nested
// control flow conservatively clears all held state.
func checkDoubleLock(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		blk, ok := n.(*ast.BlockStmt)
		if !ok {
			return true
		}
		held := map[string]bool{} // recv+mode currently locked in this list
		for _, stmt := range blk.List {
			es, ok := stmt.(*ast.ExprStmt)
			if !ok {
				// defer Unlock doesn't release mid-list; any other
				// compound statement may lock/unlock on its own paths.
				if _, isDefer := stmt.(*ast.DeferStmt); !isDefer && !isSimpleStmt(stmt) {
					held = map[string]bool{}
				}
				continue
			}
			call, ok := es.X.(*ast.CallExpr)
			if !ok {
				continue
			}
			fn := pass.CalleeFunc(call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
				continue
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				continue
			}
			k := types.ExprString(sel.X) + "/" + fn.Name()
			switch fn.Name() {
			case "Lock", "RLock":
				if held[k] {
					pass.Reportf(call.Pos(),
						"%s.%s is already held here; locking it again deadlocks",
						types.ExprString(sel.X), fn.Name())
				}
				held[k] = true
			case "Unlock":
				delete(held, types.ExprString(sel.X)+"/Lock")
			case "RUnlock":
				delete(held, types.ExprString(sel.X)+"/RLock")
			}
		}
		return true
	})
}

// isSimpleStmt reports statements that cannot themselves lock or unlock
// (so a linear double-lock scan may safely step over them).
func isSimpleStmt(stmt ast.Stmt) bool {
	switch s := stmt.(type) {
	case *ast.AssignStmt, *ast.DeclStmt, *ast.IncDecStmt, *ast.EmptyStmt:
		return true
	case *ast.ExprStmt:
		_ = s
		return true
	}
	return false
}
