package analysis

import (
	"fmt"
	"strings"
)

// Unit is a dimension vector over the four base dimensions Ivory's models
// mix — volts, amperes, seconds, metres — forming the unit-inference
// lattice of the unitflow analyzer. Every electrical quantity the paper
// ranks on decomposes over this basis:
//
//	Hz = s⁻¹      F = A·s/V     H = V·s/A    Ω = V/A
//	S  = A/V      W = V·A       J = V·A·s    m² = m²
//
// so multiplication and division of quantities reduce to integer vector
// addition and subtraction, and a mixed-unit add/compare is a vector
// inequality. Scale prefixes (MHz vs Hz, mm² vs m²) share one dimension:
// the lattice checks dimensional consistency, not magnitudes.
//
// Three lattice points matter beyond concrete vectors:
//
//   - unknown (the zero Unit): no information. Unknown absorbs every
//     operation and never produces a finding — the analyzer's way of
//     staying silent rather than guessing.
//   - wild: a bare numeric constant (0.5, 1e-6, routingTax). Constants are
//     scale factors by convention, compatible with every unit.
//   - dimensionless: a *known* zero vector (Duty, Eff, Ratio, ...).
//     Unlike wild, adding a dimensionless quantity to volts is a finding.
type Unit struct {
	// Known marks a concrete lattice point; the zero Unit is "unknown".
	Known bool
	// Wild marks a numeric constant, compatible with any unit.
	Wild bool
	// V, A, S, M are the exponents of volts, amperes, seconds, metres.
	V, A, S, M int8
}

// Convenience constructors for the derived units of the codebase.
var (
	unitUnknown       = Unit{}
	unitWild          = Unit{Known: true, Wild: true}
	unitDimensionless = Unit{Known: true}
	unitVolt          = Unit{Known: true, V: 1}
	unitAmp           = Unit{Known: true, A: 1}
	unitSecond        = Unit{Known: true, S: 1}
	unitMetre         = Unit{Known: true, M: 1}
	unitM2            = Unit{Known: true, M: 2}
	unitHertz         = Unit{Known: true, S: -1}
	unitFarad         = Unit{Known: true, V: -1, A: 1, S: 1}
	unitHenry         = Unit{Known: true, V: 1, A: -1, S: 1}
	unitOhm           = Unit{Known: true, V: 1, A: -1}
	unitSiemens       = Unit{Known: true, V: -1, A: 1}
	unitWatt          = Unit{Known: true, V: 1, A: 1}
	unitJoule         = Unit{Known: true, V: 1, A: 1, S: 1}
)

// sameDim reports whether two known, non-wild units share a dimension
// vector.
func (u Unit) sameDim(v Unit) bool {
	return u.V == v.V && u.A == v.A && u.S == v.S && u.M == v.M
}

// Compatible reports whether the two units can meet in an add, compare,
// or assignment without a finding: either is unknown or wild, or the
// dimension vectors agree.
func (u Unit) Compatible(v Unit) bool {
	if !u.Known || !v.Known || u.Wild || v.Wild {
		return true
	}
	return u.sameDim(v)
}

// Mul combines units across a multiplication. Wild is the identity;
// unknown absorbs.
func (u Unit) Mul(v Unit) Unit {
	if !u.Known || !v.Known {
		return unitUnknown
	}
	if u.Wild {
		return v
	}
	if v.Wild {
		return u
	}
	return Unit{Known: true, V: u.V + v.V, A: u.A + v.A, S: u.S + v.S, M: u.M + v.M}
}

// Div combines units across a division.
func (u Unit) Div(v Unit) Unit {
	return u.Mul(v.Recip())
}

// Recip inverts the dimension vector.
func (u Unit) Recip() Unit {
	if !u.Known || u.Wild {
		return u
	}
	return Unit{Known: true, V: -u.V, A: -u.A, S: -u.S, M: -u.M}
}

// Pow raises the unit to an integer power.
func (u Unit) Pow(n int) Unit {
	if !u.Known || u.Wild {
		return u
	}
	return Unit{Known: true, V: u.V * int8(n), A: u.A * int8(n), S: u.S * int8(n), M: u.M * int8(n)}
}

// Sqrt halves every exponent; a vector with an odd exponent has no exact
// square root in the lattice and degrades to unknown (R_out =
// sqrt(R_SSL²+R_FSL²) stays ohms; sqrt of seconds stays silent).
func (u Unit) Sqrt() Unit {
	if !u.Known || u.Wild {
		return u
	}
	if u.V%2 != 0 || u.A%2 != 0 || u.S%2 != 0 || u.M%2 != 0 {
		return unitUnknown
	}
	return Unit{Known: true, V: u.V / 2, A: u.A / 2, S: u.S / 2, M: u.M / 2}
}

// unitNames maps the derived units back to their conventional symbols for
// diagnostics.
var unitNames = []struct {
	u    Unit
	name string
}{
	{unitVolt, "V"},
	{unitAmp, "A"},
	{unitSecond, "s"},
	{unitMetre, "m"},
	{unitM2, "m²"},
	{unitHertz, "Hz"},
	{unitFarad, "F"},
	{unitHenry, "H"},
	{unitOhm, "Ω"},
	{unitSiemens, "S"},
	{unitWatt, "W"},
	{unitJoule, "J"},
}

func (u Unit) String() string {
	if !u.Known {
		return "?"
	}
	if u.Wild {
		return "const"
	}
	if u.sameDim(unitDimensionless) {
		return "dimensionless"
	}
	for _, d := range unitNames {
		if u.sameDim(d.u) {
			return d.name
		}
	}
	// Fall back to an exponent product over the base dimensions.
	var parts []string
	for _, b := range []struct {
		exp  int8
		name string
	}{{u.V, "V"}, {u.A, "A"}, {u.S, "s"}, {u.M, "m"}} {
		switch {
		case b.exp == 0:
		case b.exp == 1:
			parts = append(parts, b.name)
		default:
			parts = append(parts, fmt.Sprintf("%s^%d", b.name, b.exp))
		}
	}
	return strings.Join(parts, "·")
}

// tokenUnits maps lower-cased CamelCase name tokens to units: the PR 1
// suffix conventions (Hz, V, A, W, M2, FPerM2, HPerM2, ...) plus their
// scale variants. Scale prefixes share the base dimension — the lattice
// checks dimensions, not magnitudes.
var tokenUnits = map[string]Unit{
	// frequency
	"hz": unitHertz, "khz": unitHertz, "mhz": unitHertz, "ghz": unitHertz,
	"hertz": unitHertz,
	// voltage
	"v": unitVolt, "mv": unitVolt, "uv": unitVolt, "kv": unitVolt,
	"vpp": unitVolt, "volt": unitVolt,
	// current
	"a": unitAmp, "ma": unitAmp, "ua": unitAmp, "na": unitAmp,
	"amp": unitAmp, "ampere": unitAmp,
	// power / energy
	"w": unitWatt, "mw": unitWatt, "uw": unitWatt, "nw": unitWatt, "kw": unitWatt,
	"watt": unitWatt,
	"j":    unitJoule, "mj": unitJoule, "uj": unitJoule, "nj": unitJoule,
	"pj": unitJoule, "fj": unitJoule, "joule": unitJoule,
	// impedance / conductance
	"ohm": unitOhm, "mohm": unitOhm, "kohm": unitOhm, "uohm": unitOhm,
	"siemens": unitSiemens,
	// capacitance / inductance
	"f": unitFarad, "pf": unitFarad, "nf": unitFarad, "uf": unitFarad,
	"ff": unitFarad, "farad": unitFarad,
	// "ph" is deliberately absent: a "Ph" camel token is phase (iPh,
	// nPh), never pico-henries, in this module's naming.
	"h": unitHenry, "nh": unitHenry, "uh": unitHenry,
	"henry": unitHenry,
	// time
	"sec": unitSecond, "secs": unitSecond, "seconds": unitSecond,
	"ns": unitSecond, "us": unitSecond, "ps": unitSecond, "ms": unitSecond,
	// geometry
	"m": unitMetre, "um": unitMetre, "nm": unitMetre, "mm": unitMetre,
	"m2": unitM2, "mm2": unitM2, "um2": unitM2, "cm2": unitM2,
	// bare trailing quantity letters used as suffixes (GridR, GridL)
	"r": unitOhm, "l": unitHenry,
}

// wordUnits extends the suffix convention with whole words that imply a
// unit (or dimensionlessness) when they lead or end a name: AreaMax and
// SwitchArea are both m², EffSC and Efficiency both dimensionless.
// Voltage- and current-flavoured words are deliberately absent: in the SC
// topology math, names like CapVoltages denote normalized fractions of
// VIn, not volts. "Eff" here means efficiency; names like CEff/LEff
// (effective capacitance/inductance) are claimed first by the
// quantity-symbol prefix rule, which runs before this map.
var wordUnits = map[string]Unit{
	"area": unitM2, "freq": unitHertz, "frequency": unitHertz,
	"duty": unitDimensionless, "eff": unitDimensionless,
	"efficiency": unitDimensionless, "ratio": unitDimensionless,
	"ratios": unitDimensionless, "factor": unitDimensionless,
	"gain": unitDimensionless, "pct": unitDimensionless,
	"percent": unitDimensionless, "fraction": unitDimensionless,
	"frac": unitDimensionless, "multiplier": unitDimensionless,
	"multipliers": unitDimensionless,
}

// scalePrefixTokens are single-letter CamelCase tokens that act as SI
// scale prefixes when immediately followed by a unit token ("M"+"Hz" is
// megahertz, not metre·hertz; "K"+"Ohm" is kilo-ohm).
var scalePrefixTokens = map[string]bool{
	"m": true, "k": true, "g": true, "u": true, "n": true, "p": true,
}

// leadSymbolUnits is the quantity-symbol prefix convention blessed by the
// unitsuffix analyzer: a single-letter first CamelCase token names the
// quantity (VIn, IMax, CTotal, fsw, gShare, tPhase).
var leadSymbolUnits = map[string]Unit{
	"v": unitVolt, "i": unitAmp, "c": unitFarad, "g": unitSiemens,
	"l": unitHenry, "r": unitOhm, "f": unitHertz, "p": unitWatt,
	"t": unitSecond,
}

// exactNameUnits pins whole (lower-cased) identifiers whose CamelCase
// tokens carry no machine-readable unit but whose meaning is fixed
// module-wide.
var exactNameUnits = map[string]Unit{
	"fsw": unitHertz, "vin": unitVolt, "vout": unitVolt, "vdd": unitVolt,
	"vnom": unitVolt, "iload": unitAmp, "imax": unitAmp, "dt": unitSecond,
	// iL is the inductor *current* of the buck state equations, not an
	// inductance — the trailing-L suffix rule must not claim it.
	"il": unitAmp,
}

// UnitOfName infers the unit an identifier's name implies, or the unknown
// unit when the name carries no (unambiguous) unit information. The
// inference order is: exact whole-name matches, then the trailing
// unit-token run (with "Per" as a divider and SI scale-prefix merging),
// then the leading quantity-symbol convention, then unit words at either
// end of the name (Area, Freq, Eff).
func UnitOfName(name string) Unit {
	if len(name) <= 1 {
		// Single letters (m, t, v as locals) are generic loop/temp names far
		// more often than quantities; stay silent.
		return unitUnknown
	}
	if u, ok := exactNameUnits[strings.ToLower(name)]; ok {
		return u
	}
	toks := camelTokens(name)
	if len(toks) == 0 {
		return unitUnknown
	}
	if u, ok := trailingUnitRun(toks); ok {
		return u
	}
	// A trailing digit that is not itself a unit token (m2, mm2) marks a
	// squared quantity (iRms2 = A²) or a numbered variant (vout2, x2);
	// either way the suffix rules below would mis-read it.
	if last := toks[len(toks)-1]; last[len(last)-1] >= '0' && last[len(last)-1] <= '9' {
		return unitUnknown
	}
	// Leading quantity symbol: first token is the bare letter and more
	// tokens follow (VIn, iLoad, gShare). A one-token name never matches —
	// "Leakage" is not henries — and CEff/LEff resolve here as farads and
	// henries before the word rule below could read "Eff" as efficiency.
	if len(toks) > 1 && len(toks[0]) == 1 {
		if u, ok := leadSymbolUnits[strings.ToLower(toks[0])]; ok {
			return u
		}
	}
	if u, ok := wordUnits[strings.ToLower(toks[len(toks)-1])]; ok {
		return u
	}
	if u, ok := wordUnits[strings.ToLower(toks[0])]; ok {
		return u
	}
	return unitUnknown
}

// trailingUnitRun parses the longest suffix of toks made of unit tokens,
// "Per" dividers, and SI scale prefixes into a composite unit:
// [Density F Per M2] → F/m², [FSw Max Hz] → Hz, [FSw M Hz] → Hz (M merges
// into MHz). A run that is only "Per ..." yields the reciprocal
// (LeakPerFarad → F⁻¹).
func trailingUnitRun(toks []string) (Unit, bool) {
	// Collect the trailing run of unit-ish tokens.
	start := len(toks)
	for start > 0 {
		t := strings.ToLower(toks[start-1])
		if _, ok := tokenUnits[t]; !ok && t != "per" && !scalePrefixTokens[t] {
			break
		}
		start--
	}
	run := toks[start:]
	// Trim leading scale prefixes/Per that merely border the run head —
	// a scale prefix is only meaningful before a unit token inside the run.
	for len(run) > 0 && strings.ToLower(run[0]) == "per" && len(run) == 1 {
		run = nil
	}
	if len(run) == 0 {
		return unitUnknown, false
	}
	u := unitDimensionless
	invert := false
	sawUnit := false
	for i := 0; i < len(run); i++ {
		t := strings.ToLower(run[i])
		if t == "per" {
			invert = true
			continue
		}
		// SI scale prefix immediately before a unit token merges into it.
		if scalePrefixTokens[t] && i+1 < len(run) {
			if _, ok := tokenUnits[strings.ToLower(run[i+1])]; ok {
				continue
			}
		}
		tu, ok := tokenUnits[t]
		if !ok {
			// A scale prefix with nothing to scale ends the parse
			// inconclusively ("SumAC" never reaches here; "FeatureM" does
			// with t="m" — metre — which IS in tokenUnits).
			return unitUnknown, false
		}
		sawUnit = true
		if invert {
			u = u.Div(tu)
		} else {
			u = u.Mul(tu)
		}
	}
	if !sawUnit {
		return unitUnknown, false
	}
	return u, true
}
