package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// NonFinitePackages lists the import-path suffixes of the model packages
// whose exported entry points must guard against NaN/Inf. The driver can
// extend it via -nonfinite.pkgs.
var NonFinitePackages = []string{
	"internal/sc",
	"internal/buck",
	"internal/ldo",
	"internal/core",
	"internal/dynamic",
	"internal/pdn",
}

// NonFinite flags exported model-entry functions that perform
// floating-point division yet never check finiteness before returning.
//
// A division by a degenerate operating point (zero load, collapsed
// output) turns an efficiency into NaN; NaN compares false with
// everything, so an unguarded NaN silently loses every comparison in the
// optimizer's ranking loop and corrupts the reported Pareto front rather
// than crashing. The rule: in the model packages (NonFinitePackages), an
// exported function or method whose last result is error and whose body
// divides floats must call math.IsNaN / math.IsInf or one of the shared
// guards (numeric.Finite, numeric.AllFinite, ivr.Metrics.Finite — any
// callee whose name contains "Finite") before returning.
//
// Test files are exempt; so are functions whose divisions are all guarded
// transitively in a callee — suppress those with
// //lint:ignore nonfinite <reason>.
var NonFinite = &Analyzer{
	Name: "nonfinite",
	Doc:  "flag exported model entry points that divide floats without a NaN/Inf guard",
	Run:  runNonFinite,
}

func runNonFinite(pass *Pass) error {
	if !pathMatches(pass.Pkg.Path(), NonFinitePackages) {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() || pass.InTestFile(fd.Pos()) {
				continue
			}
			if !returnsError(pass, fd) {
				continue
			}
			divides, guarded := scanBody(pass, fd.Body)
			if divides && !guarded {
				kind := "function"
				if fd.Recv != nil {
					kind = "method"
				}
				pass.Reportf(fd.Name.Pos(),
					"exported %s %s divides floats but never checks finiteness; guard results with numeric.Finite/AllFinite (or math.IsNaN/IsInf) before returning",
					kind, fd.Name.Name)
			}
		}
	}
	return nil
}

func pathMatches(path string, suffixes []string) bool {
	for _, s := range suffixes {
		if path == s || strings.HasSuffix(path, "/"+s) {
			return true
		}
	}
	return false
}

// returnsError reports whether the function's last result is error.
func returnsError(pass *Pass, fd *ast.FuncDecl) bool {
	res := fd.Type.Results
	if res == nil || len(res.List) == 0 {
		return false
	}
	last := res.List[len(res.List)-1]
	t := pass.TypeOf(last.Type)
	return t != nil && t.String() == "error"
}

// scanBody looks for float divisions and finiteness-guard calls.
func scanBody(pass *Pass, body *ast.BlockStmt) (divides, guarded bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			if n.Op == token.QUO && (IsFloat(pass.TypeOf(n.X)) || IsFloat(pass.TypeOf(n.Y))) {
				divides = true
			}
		case *ast.AssignStmt:
			if n.Tok == token.QUO_ASSIGN {
				if len(n.Lhs) == 1 && IsFloat(pass.TypeOf(n.Lhs[0])) {
					divides = true
				}
			}
		case *ast.CallExpr:
			if isFiniteGuard(CalleeName(n)) {
				guarded = true
			}
		}
		return true
	})
	return divides, guarded
}

// isFiniteGuard recognizes finiteness checks by callee name: math.IsNaN,
// math.IsInf, and any function or method whose name mentions Finite
// (numeric.Finite, numeric.AllFinite, Metrics.Finite, ...).
func isFiniteGuard(name string) bool {
	return name == "IsNaN" || name == "IsInf" || strings.Contains(name, "Finite")
}
