package analysis

import "testing"

func TestWGSafeGolden(t *testing.T) {
	pkg := fixturePkg(t, "fix/wgsafe", map[string]string{
		"wg.go": `package fix

import "sync"

func work() {}

func Spawn(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		go func() {
			wg.Add(1)
			work()
			wg.Done()
		}()
	}
	wg.Wait()
}
`,
	})
	runGolden(t, WGSafe, pkg, []string{
		"wg.go:11:4: [wgsafe] WaitGroup.Add inside the spawned goroutine races with Wait; call Add before the go statement",
		"wg.go:13:4: [wgsafe] WaitGroup.Done is not deferred; a panic or early return above it hangs Wait — use `defer wg.Done()` first in the goroutine",
	})
}

// TestWGSafeSilent pins the correct protocol (Add before the go
// statement, deferred Done) and the out-of-scope `go method()` shape.
func TestWGSafeSilent(t *testing.T) {
	pkg := fixturePkg(t, "fix/wgsafeok", map[string]string{
		"ok.go": `package fix

import "sync"

func work() {}

func Good(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			work()
		}()
	}
	wg.Wait()
}

type runner struct{ wg sync.WaitGroup }

func (r *runner) step() { r.wg.Done() }

func (r *runner) Spawn() {
	r.wg.Add(1)
	go r.step()
	r.wg.Wait()
}
`,
	})
	runGolden(t, WGSafe, pkg, nil)
}
