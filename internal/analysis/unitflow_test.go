package analysis

import "testing"

func TestUnitFlowGolden(t *testing.T) {
	pkg := fixturePkg(t, "fix/unitflow", map[string]string{
		"uf.go": `package fix

type Cand struct {
	AreaM2 float64
	PowerW float64
}

func dissipate(pW float64) float64 { return pW }

func FSwHz(tCycle float64) float64 {
	return tCycle
}

func f(vIn, iLoad, fsw, cTotal float64) float64 {
	rOut := vIn / iLoad
	mixed := vIn + iLoad
	if vIn > fsw {
		mixed = 0
	}
	tCycle := cTotal * rOut
	powerW := vIn * vIn / rOut
	c := Cand{AreaM2: powerW}
	_ = c
	vDroop := iLoad
	_ = vDroop
	_ = dissipate(vIn)
	vRipple := iLoad / (fsw * cTotal)
	_ = FSwHz(tCycle)
	areaM2 := 2e-6
	areaMM2 := areaM2 * 1e6
	_ = areaMM2
	return mixed + vRipple
}
`,
	})
	runGolden(t, UnitFlow, pkg, []string{
		"uf.go:11:9: [unitflow] returns s where FSwHz declares Hz",
		"uf.go:16:15: [unitflow] adds V to A: operands of + carry different inferred units",
		"uf.go:17:9: [unitflow] compares V to Hz: operands of > carry different inferred units",
		"uf.go:22:20: [unitflow] initializes field AreaM2 (m²) with W",
		"uf.go:24:12: [unitflow] assigns A to vDroop, whose name implies V",
		"uf.go:26:16: [unitflow] passes V as parameter pW of dissipate, whose name implies W",
	})
}

// TestUnitFlowSilent pins expressions the lattice must stay quiet on:
// wild constants, scale conversions, unknown names, and physically
// consistent derivations.
func TestUnitFlowSilent(t *testing.T) {
	pkg := fixturePkg(t, "fix/unitflowok", map[string]string{
		"ok.go": `package fix

import "math"

func g(vIn, iLoad, fsw, cTotal, areaM2 float64) float64 {
	rOut := vIn / iLoad
	vOut := vIn * 0.5
	pLoss := iLoad * iLoad * rOut
	tSettle := rOut * cTotal
	fRes := 1 / tSettle
	areaMM2 := areaM2 * 1e6
	iRms2 := iLoad * iLoad
	rTotal := math.Sqrt(rOut * rOut)
	vDrop := iLoad * rTotal
	_, _, _, _, _ = fsw, pLoss, fRes, areaMM2, iRms2
	return vOut + vDrop
}
`,
	})
	runGolden(t, UnitFlow, pkg, nil)
}
