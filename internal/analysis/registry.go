package analysis

// All returns the full analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		DroppedErr,
		FloatCmp,
		NonFinite,
		PowSquare,
		UnitSuffix,
	}
}
