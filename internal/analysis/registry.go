package analysis

// All returns the full analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		CtxFlow,
		DroppedErr,
		FloatCmp,
		LockSafe,
		NonFinite,
		PowSquare,
		UnitFlow,
		UnitSuffix,
		WGSafe,
	}
}
