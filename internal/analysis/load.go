package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, parsed, and typechecked package, ready to be
// handed to analyzers.
type Package struct {
	// Path is the import path ("ivory/internal/sc"); external test
	// packages get a ".test" suffix.
	Path string
	// Dir is the directory the sources live in.
	Dir string
	// Fset is shared by every package of one Load call.
	Fset *token.FileSet
	// Files are the parsed files, in file-name order. In-package _test.go
	// files are included with their package; package foo_test files form
	// their own Package.
	Files []*ast.File
	// Types and Info are the go/types results.
	Types *types.Package
	Info  *types.Info
	// TypeErrors holds the type errors of a package that failed to check
	// cleanly. Such a package still carries its (partial) Types/Info so
	// syntactic analyzers can run; the runner surfaces each entry as a
	// "typecheck" diagnostic.
	TypeErrors []types.Error
}

// Load parses and typechecks every package matched by patterns, relative
// to dir (typically the module root). Supported patterns are plain
// directories ("./internal/sc") and recursive ones ("./...",
// "./internal/..."). Typechecking resolves imports from source via
// go/importer, so the module's own packages and the standard library are
// both available without compiled artifacts.
func Load(dir string, patterns []string) ([]*Package, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root, modPath, err := moduleRoot(dir)
	if err != nil {
		return nil, err
	}
	dirs, err := expandPatterns(dir, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	var pkgs []*Package
	for _, d := range dirs {
		loaded, err := loadDir(fset, imp, root, modPath, d)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, loaded...)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// moduleRoot ascends from dir to the enclosing go.mod and returns its
// directory and module path.
func moduleRoot(dir string) (root, modPath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module line", d)
		}
		if filepath.Dir(d) == d {
			return "", "", fmt.Errorf("analysis: no go.mod above %s", abs)
		}
	}
}

// expandPatterns resolves package patterns to a sorted list of candidate
// directories containing .go files.
func expandPatterns(base string, patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if pat == "..." || strings.HasSuffix(pat, "/...") {
			recursive = true
			pat = strings.TrimSuffix(strings.TrimSuffix(pat, "..."), "/")
			if pat == "" {
				pat = "."
			}
		}
		start := pat
		if !filepath.IsAbs(start) {
			start = filepath.Join(base, start)
		}
		fi, err := os.Stat(start)
		if err != nil {
			return nil, fmt.Errorf("analysis: pattern %q: %w", pat, err)
		}
		if !fi.IsDir() {
			return nil, fmt.Errorf("analysis: pattern %q is not a directory", pat)
		}
		if !recursive {
			if hasGoFiles(start) {
				add(start)
			}
			continue
		}
		err = filepath.WalkDir(start, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != start && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			if hasGoFiles(p) {
				add(p)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasPrefix(e.Name(), ".") {
			return true
		}
	}
	return false
}

// loadDir parses every .go file in dir and typechecks each package found
// there (the package proper, in-package tests merged in, and any external
// _test package separately).
func loadDir(fset *token.FileSet, imp types.Importer, root, modPath, dir string) ([]*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	byName := map[string][]*ast.File{}
	var names []string
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasPrefix(e.Name(), ".") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		n := f.Name.Name
		if _, ok := byName[n]; !ok {
			names = append(names, n)
		}
		byName[n] = append(byName[n], f)
	}
	rel, err := filepath.Rel(root, dir)
	if err != nil {
		return nil, err
	}
	importPath := modPath
	if rel != "." {
		importPath = modPath + "/" + filepath.ToSlash(rel)
	}
	sort.Strings(names)
	var pkgs []*Package
	for _, n := range names {
		path := importPath
		if strings.HasSuffix(n, "_test") {
			path += ".test"
		}
		p, err := check(fset, imp, path, byName[n])
		if err != nil {
			return nil, fmt.Errorf("analysis: %s: %w", dir, err)
		}
		p.Dir = dir
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// check typechecks one package's files. A package with type errors is
// not fatal: it loads in degraded mode, carrying whatever partial type
// information go/types produced plus the errors themselves, so syntactic
// analyzers still run and the runner can report the errors in place.
func check(fset *token.FileSet, imp types.Importer, path string, files []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	var typeErrs []types.Error
	conf := types.Config{
		Importer: imp,
		Error: func(err error) {
			if te, ok := err.(types.Error); ok {
				typeErrs = append(typeErrs, te)
				return
			}
			typeErrs = append(typeErrs, types.Error{Fset: fset, Msg: err.Error()})
		},
	}
	tpkg, _ := conf.Check(path, fset, files, info)
	if tpkg == nil {
		tpkg = types.NewPackage(path, pkgNameOf(files))
	}
	return &Package{Path: path, Fset: fset, Files: files, Types: tpkg, Info: info, TypeErrors: typeErrs}, nil
}

func pkgNameOf(files []*ast.File) string {
	if len(files) > 0 {
		return files[0].Name.Name
	}
	return "p"
}
