package analysis

import (
	"go/ast"
	"go/types"
)

// WGSafe checks the WaitGroup protocol the fan-out code depends on:
// Add happens-before the goroutine spawn, and Done runs on every exit
// path of the goroutine.
//
// Two findings:
//
//   - wg.Add(...) lexically inside a go-statement's function literal —
//     the spawned goroutine races its Add against the parent's Wait, so
//     Wait can return before the work is counted;
//   - a plain (non-deferred) wg.Done() inside a go-statement's function
//     literal — a panic or early return on any path above it skips the
//     Done and Wait hangs forever. `defer wg.Done()` is the only shape
//     that survives every exit.
//
// Both are lexical: `go w.run()` bodies are out of scope (they are
// checked when their own declaration is analyzed, where no go-statement
// context exists — the contract there is the caller's).
var WGSafe = &Analyzer{
	Name: "wgsafe",
	Doc:  "flag WaitGroup.Add inside the spawned goroutine and non-deferred Done",
	Run:  runWGSafe,
}

func runWGSafe(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := gs.Call.Fun.(*ast.FuncLit)
			if !ok {
				return true
			}
			checkGoLit(pass, lit)
			return true
		})
	}
	return nil
}

func checkGoLit(pass *Pass, lit *ast.FuncLit) {
	var deferred []*ast.CallExpr
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok {
			deferred = append(deferred, d.Call)
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := pass.CalleeFunc(call)
		if fn == nil || !isWaitGroupMethod(fn) {
			return true
		}
		switch fn.Name() {
		case "Add":
			pass.Reportf(call.Pos(),
				"WaitGroup.Add inside the spawned goroutine races with Wait; call Add before the go statement")
		case "Done":
			if !isDeferredCall(call, deferred) {
				pass.Reportf(call.Pos(),
					"WaitGroup.Done is not deferred; a panic or early return above it hangs Wait — use `defer %s.Done()` first in the goroutine",
					recvString(call))
			}
		}
		return true
	})
}

func isWaitGroupMethod(fn *types.Func) bool {
	if fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "WaitGroup"
}

func isDeferredCall(call *ast.CallExpr, deferred []*ast.CallExpr) bool {
	for _, d := range deferred {
		if d == call {
			return true
		}
	}
	return false
}

func recvString(call *ast.CallExpr) string {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		return types.ExprString(sel.X)
	}
	return "wg"
}
