package analysis

import (
	"go/ast"
	"go/token"
)

// FloatCmp flags == and != where either operand is floating-point.
//
// Model outputs travel through long chains of float64 arithmetic
// (impedances, losses, efficiencies); exact equality on such values is
// almost always a latent bug — two mathematically equal results differ in
// the last ulp and the comparison silently flips. Use an epsilon
// comparison (numeric.ApproxEqual) instead.
//
// Comparisons against a literal 0 are exempt: this codebase uses exact
// zero as the "field not set, apply the default" sentinel in Config
// validation (e.g. sc.Config.Duty), and IEEE-754 zero compares are exact.
var FloatCmp = &Analyzer{
	Name: "floatcmp",
	Doc:  "flag == / != on floating-point operands (except the zero-value sentinel)",
	Run:  runFloatCmp,
}

func runFloatCmp(pass *Pass) error {
	pass.WalkFiles(func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
			return true
		}
		if !IsFloat(pass.TypeOf(be.X)) && !IsFloat(pass.TypeOf(be.Y)) {
			return true
		}
		if isZeroLiteral(be.X) || isZeroLiteral(be.Y) {
			return true
		}
		// A comparison folded entirely at compile time is exact.
		if tv, ok := pass.Info.Types[be]; ok && tv.Value != nil {
			return true
		}
		pass.Reportf(be.OpPos, "floating-point %s comparison; use an epsilon comparison (numeric.ApproxEqual)", be.Op)
		return true
	})
	return nil
}

// isZeroLiteral reports whether e is a literal 0 (or 0.0, or -0), the
// zero-value sentinel exempted from floatcmp.
func isZeroLiteral(e ast.Expr) bool {
	e = ast.Unparen(e)
	if u, ok := e.(*ast.UnaryExpr); ok && (u.Op == token.SUB || u.Op == token.ADD) {
		e = ast.Unparen(u.X)
	}
	bl, ok := e.(*ast.BasicLit)
	if !ok || (bl.Kind != token.INT && bl.Kind != token.FLOAT) {
		return false
	}
	for _, c := range bl.Value {
		if c != '0' && c != '.' {
			return false
		}
	}
	return true
}
