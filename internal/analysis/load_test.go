package analysis

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestLoadDegradedTypecheck pins the loader's behavior on a package that
// does not typecheck: Load must not fail, the package must carry its type
// errors, and the runner must both surface them as "typecheck"
// diagnostics and still run the analyzers over the partial type info.
func TestLoadDegradedTypecheck(t *testing.T) {
	pkgs, err := Load(filepath.Join("testdata", "src", "broken"), []string{"."})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("packages: got %d, want 1", len(pkgs))
	}
	pkg := pkgs[0]
	if len(pkg.TypeErrors) == 0 {
		t.Fatal("TypeErrors: empty, want the undefined-identifier error")
	}
	if msg := pkg.TypeErrors[0].Msg; !strings.Contains(msg, "undefinedThing") {
		t.Errorf("TypeErrors[0] = %q, want mention of undefinedThing", msg)
	}
	if pkg.Types == nil || pkg.Info == nil {
		t.Fatal("degraded package must still carry partial Types/Info")
	}

	r := &Runner{Analyzers: All()}
	diags, err := r.Run(pkgs)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	var haveTypecheck, haveFloatcmp bool
	for _, d := range diags {
		switch d.Analyzer {
		case "typecheck":
			haveTypecheck = true
			if !strings.HasSuffix(d.Pos.Filename, "broken.go") || d.Pos.Line == 0 {
				t.Errorf("typecheck diagnostic lacks a position: %s", d)
			}
		case "floatcmp":
			haveFloatcmp = true
		}
	}
	if !haveTypecheck {
		t.Errorf("no typecheck diagnostic in %q", diags)
	}
	if !haveFloatcmp {
		t.Errorf("no floatcmp diagnostic in %q — analyzers must still run on degraded packages", diags)
	}
}
