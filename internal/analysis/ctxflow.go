package analysis

import (
	"go/ast"
	"go/types"
)

// CtxFlow enforces the run-control contract PRs 3–4 established by hand:
// a function that accepts a context.Context must actually thread it.
//
// Three findings:
//
//   - calling context.Background() or context.TODO() inside a function
//     that already has a ctx parameter — the fresh context severs the
//     caller's cancellation;
//   - calling F(...) where the same package (or the receiver's method
//     set) also defines FContext(...) — the ctx-less variant exists only
//     as a compatibility wrapper, so calling it from a ctx-carrying
//     function silently drops run control (net.Dial vs net.DialContext is
//     the classic);
//   - an outermost loop in a ctx-carrying function that calls back into
//     this module yet never consults ctx anywhere in its body — neither
//     ctx.Done()/ctx.Err() polling nor passing ctx (or a Spec carrying
//     it) to a callee. Such a loop runs to completion after cancel,
//     which is exactly the bug class the cancellable-exploration work
//     eliminated.
//
// Loops whose bodies only do local arithmetic (no module calls) are
// exempt: polling a few-microsecond loop would be noise. So are test
// files.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "flag context-carrying functions that drop, shadow, or fail to poll their context",
	Run:  runCtxFlow,
}

func runCtxFlow(pass *Pass) error {
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ctxObj := ctxParam(pass, fd)
			if ctxObj == nil {
				continue
			}
			checkCtxBody(pass, fd, ctxObj)
		}
	}
	return nil
}

// ctxParam returns the object of the function's context.Context parameter,
// or nil when it has none (or it is blank — explicitly discarded).
func ctxParam(pass *Pass, fd *ast.FuncDecl) types.Object {
	for _, fld := range fd.Type.Params.List {
		t := pass.TypeOf(fld.Type)
		if t == nil || t.String() != "context.Context" {
			continue
		}
		for _, name := range fld.Names {
			if name.Name == "_" {
				continue
			}
			return pass.Info.Defs[name]
		}
	}
	return nil
}

func checkCtxBody(pass *Pass, fd *ast.FuncDecl, ctxObj types.Object) {
	// `ctx = context.Background()` with ctx the parameter itself is the
	// nil-guard idiom (`if ctx == nil { ... }`), not a severed context.
	exempt := map[*ast.CallExpr]bool{}
	used := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || pass.Info.Uses[id] != ctxObj || i >= len(n.Rhs) {
					continue
				}
				if call, ok := n.Rhs[i].(*ast.CallExpr); ok {
					exempt[call] = true
				}
			}
		case *ast.Ident:
			if pass.Info.Uses[n] == ctxObj {
				used = true
			}
		case *ast.CallExpr:
			if !exempt[n] {
				checkCtxCall(pass, fd, n)
			}
		}
		return true
	})
	if !used {
		pass.Reportf(fd.Name.Pos(),
			"%s takes a context but never uses it; cancellation cannot propagate (name the parameter _ if that is intentional)",
			fd.Name.Name)
	}
	// Outermost loops only: an inner loop is the outer poll's
	// responsibility once per outer iteration.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			checkCtxLoop(pass, ctxObj, n)
			return false
		case *ast.FuncLit:
			return false // a literal runs on its own schedule; judged by its captures elsewhere
		}
		return true
	})
}

// checkCtxCall reports fresh-context calls and ctx-less calls that have a
// Context-suffixed sibling.
func checkCtxCall(pass *Pass, fd *ast.FuncDecl, call *ast.CallExpr) {
	fn := pass.CalleeFunc(call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	if fn.Pkg().Path() == "context" && (fn.Name() == "Background" || fn.Name() == "TODO") {
		pass.Reportf(call.Pos(),
			"context.%s() inside %s severs the caller's cancellation; thread the ctx parameter instead",
			fn.Name(), fd.Name.Name)
		return
	}
	name := fn.Name()
	if len(name) >= len("Context") && name[len(name)-len("Context"):] == "Context" {
		return // already the threading variant
	}
	if sibling := contextSibling(fn); sibling != nil {
		pass.Reportf(call.Pos(),
			"%s drops the context: call %s and pass ctx", name, sibling.Name())
	}
}

// contextSibling finds FContext next to F: for methods, in the receiver's
// method set; for package functions, in the defining package's scope.
func contextSibling(fn *types.Func) *types.Func {
	want := fn.Name() + "Context"
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	if recv := sig.Recv(); recv != nil {
		obj, _, _ := types.LookupFieldOrMethod(recv.Type(), true, fn.Pkg(), want)
		if m, ok := obj.(*types.Func); ok && takesContext(m) {
			return m
		}
		return nil
	}
	if m, ok := fn.Pkg().Scope().Lookup(want).(*types.Func); ok && takesContext(m) {
		return m
	}
	return nil
}

// takesContext reports whether fn's first parameter is a context.Context.
func takesContext(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Params().Len() == 0 {
		return false
	}
	return sig.Params().At(0).Type().String() == "context.Context"
}

// checkCtxLoop flags an (outermost) loop that does module work but never
// consults the context.
func checkCtxLoop(pass *Pass, ctxObj types.Object, loop ast.Node) {
	mentionsCtx := false
	callsModule := false
	ast.Inspect(loop, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			if pass.Info.Uses[n] == ctxObj {
				mentionsCtx = true
			}
		case *ast.CallExpr:
			if fn := pass.CalleeFunc(n); fn != nil && sameModule(pass, fn) {
				callsModule = true
			}
		}
		return true
	})
	if callsModule && !mentionsCtx {
		pass.Reportf(loop.Pos(),
			"loop calls back into the module but never consults ctx; poll ctx.Err() (or pass ctx to a callee) so cancellation can stop it")
	}
}

// sameModule reports whether fn is defined in this module — same package,
// or an import path sharing the module's leading path segment.
func sameModule(pass *Pass, fn *types.Func) bool {
	if fn.Pkg() == nil {
		return false
	}
	if fn.Pkg() == pass.Pkg {
		return true
	}
	return firstSegment(fn.Pkg().Path()) == firstSegment(pass.Pkg.Path())
}

func firstSegment(path string) string {
	for i := 0; i < len(path); i++ {
		if path[i] == '/' {
			return path[:i]
		}
	}
	return path
}
