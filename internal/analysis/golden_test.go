package analysis

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"sync"
	"testing"
)

// The fset and source importer are shared across fixtures: the importer
// caches typechecked stdlib packages, so "math" and "fmt" are compiled
// from source once per test binary instead of once per fixture.
var (
	fixtureOnce sync.Once
	fixtureFset *token.FileSet
	fixtureImp  types.Importer
)

// fixturePkg parses and typechecks a set of in-memory source files as one
// package with the given import path, exactly the way Load prepares real
// packages for the runner.
func fixturePkg(t *testing.T, path string, files map[string]string) *Package {
	t.Helper()
	fixtureOnce.Do(func() {
		fixtureFset = token.NewFileSet()
		fixtureImp = importer.ForCompiler(fixtureFset, "source", nil)
	})
	names := make([]string, 0, len(files))
	for name := range files {
		names = append(names, name)
	}
	sort.Strings(names)
	var astFiles []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fixtureFset, name, files[name], parser.ParseComments)
		if err != nil {
			t.Fatalf("parse %s: %v", name, err)
		}
		astFiles = append(astFiles, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: fixtureImp}
	pkg, err := conf.Check(path, fixtureFset, astFiles, info)
	if err != nil {
		t.Fatalf("typecheck %s: %v", path, err)
	}
	return &Package{Path: path, Fset: fixtureFset, Files: astFiles, Types: pkg, Info: info}
}

// runGolden runs one analyzer (through the full runner, so suppression
// applies) and compares the formatted diagnostics against want.
func runGolden(t *testing.T, a *Analyzer, pkg *Package, want []string) {
	t.Helper()
	r := &Runner{Analyzers: []*Analyzer{a}}
	diags, err := r.Run([]*Package{pkg})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	var got []string
	for _, d := range diags {
		got = append(got, d.String())
	}
	if len(got) != len(want) {
		t.Fatalf("diagnostic count: got %d, want %d\ngot:  %q\nwant: %q", len(got), len(want), got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("diag %d:\ngot:  %s\nwant: %s", i, got[i], want[i])
		}
	}
}

func TestFloatCmpGolden(t *testing.T) {
	pkg := fixturePkg(t, "fix/floatcmp", map[string]string{
		"fc.go": `package fix

func f(a, b float64, n int) bool {
	if a == b {
		return true
	}
	if a != 0 {
		return false
	}
	if n == 3 {
		return false
	}
	const c = 1.5
	if c == 1.5 {
		return true
	}
	return a != b
}
`,
	})
	runGolden(t, FloatCmp, pkg, []string{
		"fc.go:4:7: [floatcmp] floating-point == comparison; use an epsilon comparison (numeric.ApproxEqual)",
		"fc.go:17:11: [floatcmp] floating-point != comparison; use an epsilon comparison (numeric.ApproxEqual)",
	})
}

func TestNonFiniteGolden(t *testing.T) {
	src := `package sc

import "math"

func Bad(a, b float64) (float64, error) {
	return a / b, nil
}

func Good(a, b float64) (float64, error) {
	r := a / b
	if math.IsNaN(r) {
		return 0, nil
	}
	return r, nil
}

func NoErr(a, b float64) float64 {
	return a / b
}

func unexported(a, b float64) (float64, error) {
	return a / b, nil
}

type T struct{}

func (T) BadM(a, b float64) (float64, error) {
	return a / b, nil
}
`
	testSrc := `package sc

func BadInTest(a, b float64) (float64, error) {
	return a / b, nil
}
`
	pkg := fixturePkg(t, "ivory/internal/sc", map[string]string{
		"nf.go":      src,
		"nf_test.go": testSrc,
	})
	runGolden(t, NonFinite, pkg, []string{
		"nf.go:5:6: [nonfinite] exported function Bad divides floats but never checks finiteness; guard results with numeric.Finite/AllFinite (or math.IsNaN/IsInf) before returning",
		"nf.go:27:10: [nonfinite] exported method BadM divides floats but never checks finiteness; guard results with numeric.Finite/AllFinite (or math.IsNaN/IsInf) before returning",
	})

	// The same sources outside a model package report nothing.
	other := fixturePkg(t, "fix/elsewhere", map[string]string{"nf.go": src})
	runGolden(t, NonFinite, other, nil)
}

func TestPowSquareGolden(t *testing.T) {
	pkg := fixturePkg(t, "fix/pow", map[string]string{
		"pw.go": `package fix

import "math"

func f(x float64) float64 {
	a := math.Pow(x, 2)
	b := math.Pow(x, 0.5)
	c := math.Pow(x, 3)
	d := math.Pow(2, x)
	return a + b + c + d
}
`,
	})
	runGolden(t, PowSquare, pkg, []string{
		"pw.go:6:7: [powsquare] math.Pow(x, 2) on a sweep path; write x*x (exact and far cheaper)",
		"pw.go:7:7: [powsquare] math.Pow(x, 0.5) on a sweep path; write math.Sqrt(x) (exact and far cheaper)",
	})
}

func TestUnitSuffixGolden(t *testing.T) {
	pkg := fixturePkg(t, "ivory/internal/tech", map[string]string{
		"us.go": `package tech

type Dev struct {
	VMax float64
	RonOhm float64
	Area float64
	Scale float64
	count int
	Name string
}

func Calib(fsw, alpha float64) error { return nil }
`,
	})
	runGolden(t, UnitSuffix, pkg, []string{
		"us.go:6:2: [unitsuffix] exported float64 field Dev.Area carries no unit in its name; add a unit token (see -unitsuffix.allow) or a quantity-symbol prefix",
		"us.go:7:2: [unitsuffix] exported float64 field Dev.Scale carries no unit in its name; add a unit token (see -unitsuffix.allow) or a quantity-symbol prefix",
		"us.go:12:17: [unitsuffix] float64 parameter alpha of exported Calib carries no unit in its name; add a unit token or a quantity-symbol prefix",
	})
}

func TestDroppedErrGolden(t *testing.T) {
	pkg := fixturePkg(t, "fix/drop", map[string]string{
		"de.go": `package fix

import (
	"fmt"
	"os"
	"strings"
)

func fallible() error { return nil }

func f() {
	fallible()
	_ = fallible()
	defer fallible()
	go fallible()
	fmt.Println("ok")
	var sb strings.Builder
	sb.WriteString("x")
	fmt.Fprintf(os.Stderr, "x")
	fmt.Fprintf(&sb, "x")
	fmt.Fprintf(os.Stdout, "x")
}
`,
	})
	runGolden(t, DroppedErr, pkg, []string{
		"de.go:12:2: [droppederr] error result of fallible is discarded; handle it or assign it to _ explicitly",
		"de.go:14:8: [droppederr] error result of deferred fallible is discarded; handle it or assign it to _ explicitly",
		"de.go:15:5: [droppederr] error result of go fallible is discarded; handle it or assign it to _ explicitly",
	})
}

// TestIgnoreDirectives exercises suppression end to end: same-line and
// line-above directives suppress, a wrong-name directive does not, and a
// malformed directive (no reason) is itself reported and suppresses
// nothing.
func TestIgnoreDirectives(t *testing.T) {
	pkg := fixturePkg(t, "fix/ignore", map[string]string{
		"ig.go": `package fix

func g(a, b float64) bool {
	if a == b { //lint:ignore floatcmp exact check is intentional here
		return true
	}
	//lint:ignore floatcmp tolerated
	if a != b {
		return false
	}
	//lint:ignore droppederr wrong analyzer
	if a == b {
		return true
	}
	//lint:ignore floatcmp
	return a != b
}
`,
	})
	runGolden(t, FloatCmp, pkg, []string{
		"ig.go:12:7: [floatcmp] floating-point == comparison; use an epsilon comparison (numeric.ApproxEqual)",
		"ig.go:15:2: [ignore] malformed //lint:ignore directive: want `//lint:ignore <analyzer>[,<analyzer>] <reason>`",
		"ig.go:16:11: [floatcmp] floating-point != comparison; use an epsilon comparison (numeric.ApproxEqual)",
	})
}

// TestStaleIgnore pins the stale-directive contract: a directive that
// suppressed a finding stays silent, one that suppresses nothing is
// itself reported, and one naming an analyzer that did not run (disabled
// or absent from the Runner) is exempt.
func TestStaleIgnore(t *testing.T) {
	pkg := fixturePkg(t, "fix/stale", map[string]string{
		"st.go": `package fix

func eq(a, b float64) bool {
	//lint:ignore floatcmp exact sentinel comparison
	return a == b
}

func ne(a, b float64) bool {
	//lint:ignore floatcmp nothing on the next line compares floats
	return a < b
}

func lt(a, b float64) bool {
	//lint:ignore droppederr that analyzer is not running here
	return a < b
}
`,
	})
	runGolden(t, FloatCmp, pkg, []string{
		"st.go:9:2: [ignore] stale //lint:ignore floatcmp: it suppresses nothing on this or the next line; delete it",
	})

	// With floatcmp disabled, its directives are exempt from staleness:
	// the analyzer that might have matched never ran.
	r := &Runner{Analyzers: []*Analyzer{FloatCmp}, Disabled: map[string]bool{"floatcmp": true}}
	diags, err := r.Run([]*Package{pkg})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(diags) != 0 {
		t.Fatalf("directives for a disabled analyzer reported stale: %v", diags)
	}
}

func TestRunnerDisable(t *testing.T) {
	pkg := fixturePkg(t, "fix/disable", map[string]string{
		"ds.go": `package fix

func h(a, b float64) bool { return a == b }
`,
	})
	r := &Runner{Analyzers: All(), Disabled: map[string]bool{"floatcmp": true}}
	diags, err := r.Run([]*Package{pkg})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(diags) != 0 {
		t.Fatalf("disabled analyzer still reported: %v", diags)
	}
}

// TestLoadModule checks the loader end to end on a real package of this
// module: pattern expansion, module-path resolution, and source-importer
// typechecking of an in-module dependency (ivory/internal/numeric).
func TestLoadModule(t *testing.T) {
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(root, []string{"./internal/ivr"})
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	found := false
	for _, p := range pkgs {
		if p.Path == "ivory/internal/ivr" {
			found = true
			if p.Types == nil || len(p.Files) == 0 {
				t.Fatalf("package loaded without types or files: %+v", p)
			}
		}
	}
	if !found {
		t.Fatalf("ivory/internal/ivr not among loaded packages: %v", pkgs)
	}
}
