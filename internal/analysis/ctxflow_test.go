package analysis

import "testing"

func TestCtxFlowGolden(t *testing.T) {
	pkg := fixturePkg(t, "fix/ctxflow", map[string]string{
		"cf.go": `package fix

import "context"

func work() {}

func workContext(_ context.Context) {}

func Run(ctx context.Context, n int) error {
	for i := 0; i < n; i++ {
		work()
	}
	return ctx.Err()
}

func Sever(ctx context.Context) error {
	_ = ctx
	c2 := context.Background()
	return c2.Err()
}

func Unused(ctx context.Context) int {
	return 1
}

func Drop(ctx context.Context) {
	work()
	_ = ctx
}
`,
	})
	runGolden(t, CtxFlow, pkg, []string{
		"cf.go:10:2: [ctxflow] loop calls back into the module but never consults ctx; poll ctx.Err() (or pass ctx to a callee) so cancellation can stop it",
		"cf.go:11:3: [ctxflow] work drops the context: call workContext and pass ctx",
		"cf.go:18:8: [ctxflow] context.Background() inside Sever severs the caller's cancellation; thread the ctx parameter instead",
		"cf.go:22:6: [ctxflow] Unused takes a context but never uses it; cancellation cannot propagate (name the parameter _ if that is intentional)",
		"cf.go:27:2: [ctxflow] work drops the context: call workContext and pass ctx",
	})
}

// TestCtxFlowSilent pins the idioms ctxflow must accept: the nil-guard
// default, loops that poll ctx.Err(), loops that pass ctx to a callee,
// call-free arithmetic loops, and a blank ctx parameter.
func TestCtxFlowSilent(t *testing.T) {
	pkg := fixturePkg(t, "fix/ctxflowok", map[string]string{
		"ok.go": `package fix

import "context"

func step() {}

func workContext(_ context.Context) {}

func Guard(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	return ctx.Err()
}

func Poll(ctx context.Context, n int) {
	for i := 0; i < n; i++ {
		if ctx.Err() != nil {
			return
		}
		step()
	}
}

func Thread(ctx context.Context, n int) {
	for i := 0; i < n; i++ {
		workContext(ctx)
	}
}

func Arith(ctx context.Context, n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s += i
	}
	_ = ctx
	return s
}

func Opted(_ context.Context) {}
`,
	})
	runGolden(t, CtxFlow, pkg, nil)
}
