package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Runner executes a set of analyzers over loaded packages, applies
// //lint:ignore suppression, and returns the surviving diagnostics in
// position order.
type Runner struct {
	// Analyzers are run in order over every package.
	Analyzers []*Analyzer
	// Disabled names analyzers to skip.
	Disabled map[string]bool
}

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	names  map[string]bool // analyzer names it suppresses
	pos    token.Position  // where the comment sits
	broken string          // non-empty: malformed-directive message
	used   bool            // suppressed at least one diagnostic this run
}

// Run executes the enabled analyzers over pkgs. A diagnostic is dropped
// when a matching `//lint:ignore <name> <reason>` comment sits on the
// same line or the line directly above it. Malformed directives (missing
// analyzer name or reason) are themselves reported under the "ignore"
// analyzer so they cannot silently suppress nothing.
func (r *Runner) Run(pkgs []*Package) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		// A degraded package reports its type errors in place and still
		// runs the analyzers over whatever partial type info survived.
		for _, te := range pkg.TypeErrors {
			pos := token.Position{Filename: pkg.Dir}
			if te.Fset != nil && te.Pos.IsValid() {
				pos = te.Fset.Position(te.Pos)
			}
			diags = append(diags, Diagnostic{Pos: pos, Analyzer: "typecheck", Message: te.Msg})
		}
		for _, a := range r.Analyzers {
			if r.Disabled[a.Name] {
				continue
			}
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				diags:    &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	diags = r.suppress(pkgs, diags)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// suppress applies ignore directives and appends diagnostics for
// malformed and stale ones.
func (r *Runner) suppress(pkgs []*Package, diags []Diagnostic) []Diagnostic {
	// filename -> line -> directives on that line.
	byFile := map[string]map[int][]*ignoreDirective{}
	var all []*ignoreDirective
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					d, ok := parseIgnore(c.Text)
					if !ok {
						continue
					}
					d.pos = pkg.Fset.Position(c.Pos())
					m := byFile[d.pos.Filename]
					if m == nil {
						m = map[int][]*ignoreDirective{}
						byFile[d.pos.Filename] = m
					}
					dir := &d
					m[d.pos.Line] = append(m[d.pos.Line], dir)
					all = append(all, dir)
					if d.broken != "" {
						diags = append(diags, Diagnostic{
							Pos:      d.pos,
							Analyzer: "ignore",
							Message:  d.broken,
						})
					}
				}
			}
		}
	}
	var kept []Diagnostic
	for _, d := range diags {
		if d.Analyzer != "ignore" && suppressed(byFile, d) {
			continue
		}
		kept = append(kept, d)
	}
	// A directive that suppressed nothing is stale — the code it excused
	// was fixed or moved, and a rotten suppression would hide the next
	// real finding at its line. A directive naming any analyzer that did
	// not run (disabled, or absent from this Runner) is exempt: the
	// analyzer that might have matched never had the chance.
	ran := map[string]bool{}
	for _, a := range r.Analyzers {
		if !r.Disabled[a.Name] {
			ran[a.Name] = true
		}
	}
	for _, dir := range all {
		if dir.broken != "" || dir.used {
			continue
		}
		allRan := true
		for n := range dir.names {
			if !ran[n] {
				allRan = false
			}
		}
		if !allRan {
			continue
		}
		kept = append(kept, Diagnostic{
			Pos:      dir.pos,
			Analyzer: "ignore",
			Message: fmt.Sprintf("stale //lint:ignore %s: it suppresses nothing on this or the next line; delete it",
				joinNames(dir.names)),
		})
	}
	return kept
}

func joinNames(names map[string]bool) string {
	var ns []string
	for n := range names {
		ns = append(ns, n)
	}
	sort.Strings(ns)
	return strings.Join(ns, ",")
}

func suppressed(byFile map[string]map[int][]*ignoreDirective, d Diagnostic) bool {
	lines := byFile[d.Pos.Filename]
	if lines == nil {
		return false
	}
	// Trailing comment on the same line, or a directive on the line above.
	for _, ln := range []int{d.Pos.Line, d.Pos.Line - 1} {
		for _, dir := range lines[ln] {
			if dir.broken == "" && dir.names[d.Analyzer] {
				dir.used = true
				return true
			}
		}
	}
	return false
}

// parseIgnore recognizes `//lint:ignore name1,name2 reason...`. The
// second return is false for comments that are not lint directives at
// all; a malformed directive returns true with broken set.
func parseIgnore(text string) (ignoreDirective, bool) {
	rest, ok := strings.CutPrefix(text, "//lint:ignore")
	if !ok {
		return ignoreDirective{}, false
	}
	fields := strings.Fields(rest)
	if len(fields) < 2 {
		return ignoreDirective{
			broken: "malformed //lint:ignore directive: want `//lint:ignore <analyzer>[,<analyzer>] <reason>`",
		}, true
	}
	names := map[string]bool{}
	for _, n := range strings.Split(fields[0], ",") {
		if n != "" {
			names[n] = true
		}
	}
	return ignoreDirective{names: names}, true
}

// WalkFiles applies fn to every node of every file in the pass.
func (p *Pass) WalkFiles(fn func(ast.Node) bool) {
	for _, f := range p.Files {
		ast.Inspect(f, fn)
	}
}
