package analysis

import "testing"

func TestLockSafeGolden(t *testing.T) {
	pkg := fixturePkg(t, "fix/locksafe", map[string]string{
		"ls.go": `package fix

import "sync"

type S struct {
	mu sync.Mutex
	n  int
}

func (s S) ValueRecv() int {
	return s.n
}

func TakeByValue(s S) int {
	return s.n
}

func Leak(s *S, bad bool) int {
	s.mu.Lock()
	if bad {
		return 0
	}
	s.mu.Unlock()
	return s.n
}

func Never(s *S) {
	s.mu.Lock()
	s.n++
}

func Double(s *S) {
	s.mu.Lock()
	s.n++
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
	s.mu.Unlock()
}

func Copy(s *S) int {
	t := *s
	return t.n
}
`,
	})
	runGolden(t, LockSafe, pkg, []string{
		"ls.go:10:9: [locksafe] receiver of ValueRecv passes a lock by value; use a pointer",
		"ls.go:14:20: [locksafe] parameter of TakeByValue passes a lock by value; use a pointer",
		"ls.go:21:3: [locksafe] return leaves s.mu locked: the Unlock below is not deferred and this path skips it",
		"ls.go:28:2: [locksafe] s.mu is Locked but never released in Never",
		"ls.go:35:2: [locksafe] s.mu.Lock is already held here; locking it again deadlocks",
		"ls.go:42:2: [locksafe] assignment copies a value containing a lock; use a pointer",
	})
}

// TestLockSafeSilent pins the disciplined shapes: deferred unlock,
// sequential lock/unlock pairs, RLock with deferred RUnlock, and pointer
// aliasing (which shares rather than copies).
func TestLockSafeSilent(t *testing.T) {
	pkg := fixturePkg(t, "fix/locksafeok", map[string]string{
		"ok.go": `package fix

import "sync"

type S struct {
	mu sync.RWMutex
	n  int
}

func Fine(s *S) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

func Read(s *S) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.n
}

func Sequential(s *S) {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
	s.mu.Lock()
	s.n--
	s.mu.Unlock()
}

func Alias(s *S) int {
	t := s
	return t.n
}
`,
	})
	runGolden(t, LockSafe, pkg, nil)
}
