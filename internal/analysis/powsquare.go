package analysis

import (
	"go/ast"
	"go/constant"
)

// PowSquare flags math.Pow with a constant exponent of 2 or 0.5.
//
// The sweep loops evaluate millions of design points; math.Pow is a
// general transcendental routine costing tens of nanoseconds, while x*x
// is a single multiply and math.Sqrt a single hardware instruction —
// both also bit-exact where Pow is only faithfully rounded. On the hot
// paths (R_out, ripple, loss sums) the substitution is measurable.
var PowSquare = &Analyzer{
	Name: "powsquare",
	Doc:  "flag math.Pow(x, 2) and math.Pow(x, 0.5); prefer x*x and math.Sqrt",
	Run:  runPowSquare,
}

func runPowSquare(pass *Pass) error {
	pass.WalkFiles(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 2 {
			return true
		}
		fn := pass.CalleeFunc(call)
		if fn == nil || fn.FullName() != "math.Pow" {
			return true
		}
		tv, ok := pass.Info.Types[call.Args[1]]
		if !ok || tv.Value == nil {
			return true
		}
		exp, ok := constant.Float64Val(constant.ToFloat(tv.Value))
		if !ok {
			return true
		}
		switch exp {
		case 2:
			pass.Reportf(call.Pos(), "math.Pow(x, 2) on a sweep path; write x*x (exact and far cheaper)")
		case 0.5:
			pass.Reportf(call.Pos(), "math.Pow(x, 0.5) on a sweep path; write math.Sqrt(x) (exact and far cheaper)")
		}
		return true
	})
	return nil
}
