package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// UnitFlow is the expression-level dimensional-analysis pass. It infers
// units from the PR 1 naming conventions (suffix tokens like Hz, V, A, W,
// M2, FPerM2; quantity-symbol prefixes like VIn, iLoad, gShare — see
// UnitOfName) and propagates them through arithmetic using the Unit
// lattice: multiplication and division combine dimension vectors, sqrt
// halves them, constants are unit-wild scale factors, and anything the
// lattice cannot prove stays unknown and silent.
//
// Findings, in decreasing order of bug-likelihood:
//
//   - adding/subtracting or comparing two floats whose inferred units
//     disagree (volts to hertz, m² to W);
//   - assigning (including +=, composite-literal fields, call arguments,
//     and returns) an expression whose inferred unit contradicts the unit
//     the destination's name declares.
//
// The paper's speed-for-accuracy pitch dies on exactly these bugs: a
// single mm²-for-m² slip rescales every area the optimizer ranks on by
// 10⁶ without a crash. Test files are exempt (fixtures fake values
// freely); genuinely unit-less names stay silent because UnitOfName
// refuses to guess.
var UnitFlow = &Analyzer{
	Name: "unitflow",
	Doc:  "flag float arithmetic whose inferred physical units disagree",
	Run:  runUnitFlow,
}

func runUnitFlow(pass *Pass) error {
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				checkBinary(pass, n)
			case *ast.AssignStmt:
				checkAssign(pass, n)
			case *ast.GenDecl:
				checkVarDecl(pass, n)
			case *ast.CompositeLit:
				checkComposite(pass, n)
			case *ast.CallExpr:
				checkCallArgs(pass, n)
			case *ast.FuncDecl:
				checkReturns(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkBinary flags + - and ordered/equality comparisons whose float
// operands carry contradictory inferred units.
func checkBinary(pass *Pass, be *ast.BinaryExpr) {
	switch be.Op {
	case token.ADD, token.SUB,
		token.LSS, token.GTR, token.LEQ, token.GEQ, token.EQL, token.NEQ:
	default:
		return
	}
	if !IsFloat(pass.TypeOf(be.X)) && !IsFloat(pass.TypeOf(be.Y)) {
		return
	}
	ux, uy := inferExpr(pass, be.X), inferExpr(pass, be.Y)
	if ux.Compatible(uy) {
		return
	}
	verb := "adds"
	switch be.Op {
	case token.SUB:
		verb = "subtracts"
	case token.LSS, token.GTR, token.LEQ, token.GEQ, token.EQL, token.NEQ:
		verb = "compares"
	}
	pass.Reportf(be.OpPos, "%s %s to %s: operands of %s carry different inferred units", verb, ux, uy, be.Op)
}

// checkAssign flags =, :=, +=, -=, *=, /= whose right-hand unit
// contradicts the unit the destination's name implies.
func checkAssign(pass *Pass, as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return // multi-value call; no per-position inference
	}
	for i, lhs := range as.Lhs {
		if !IsFloat(pass.TypeOf(lhs)) {
			continue
		}
		dst := unitOfDest(lhs)
		if !dst.Known || dst.Wild {
			continue
		}
		src := inferExpr(pass, as.Rhs[i])
		switch as.Tok {
		case token.ASSIGN, token.DEFINE:
			if !dst.Compatible(src) {
				pass.Reportf(as.Rhs[i].Pos(), "assigns %s to %s, whose name implies %s", src, destName(lhs), dst)
			}
		case token.ADD_ASSIGN, token.SUB_ASSIGN:
			if !dst.Compatible(src) {
				pass.Reportf(as.Rhs[i].Pos(), "accumulates %s into %s, whose name implies %s", src, destName(lhs), dst)
			}
		case token.MUL_ASSIGN, token.QUO_ASSIGN:
			// Scaling in place is fine by a constant or a dimensionless
			// factor; scaling by a dimensioned quantity silently changes
			// the variable's unit out from under its name.
			if src.Known && !src.Wild && !src.sameDim(unitDimensionless) {
				pass.Reportf(as.Rhs[i].Pos(), "rescales %s (%s) by %s in place, changing its unit", destName(lhs), dst, src)
			}
		}
	}
}

// checkVarDecl applies the assignment rule to var declarations with
// initializers.
func checkVarDecl(pass *Pass, gd *ast.GenDecl) {
	if gd.Tok != token.VAR {
		return
	}
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok || len(vs.Values) != len(vs.Names) {
			continue
		}
		for i, name := range vs.Names {
			if !IsFloat(pass.TypeOf(name)) {
				continue
			}
			dst := UnitOfName(name.Name)
			if !dst.Known || dst.Wild {
				continue
			}
			if src := inferExpr(pass, vs.Values[i]); !dst.Compatible(src) {
				pass.Reportf(vs.Values[i].Pos(), "assigns %s to %s, whose name implies %s", src, name.Name, dst)
			}
		}
	}
}

// checkComposite flags struct-literal fields initialized with a value of
// a contradictory unit.
func checkComposite(pass *Pass, cl *ast.CompositeLit) {
	for _, el := range cl.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok || !IsFloat(pass.TypeOf(kv.Value)) {
			continue
		}
		dst := UnitOfName(key.Name)
		if !dst.Known || dst.Wild {
			continue
		}
		if src := inferExpr(pass, kv.Value); !dst.Compatible(src) {
			pass.Reportf(kv.Value.Pos(), "initializes field %s (%s) with %s", key.Name, dst, src)
		}
	}
}

// checkCallArgs flags arguments whose inferred unit contradicts the unit
// the callee's parameter name declares — the swapped-argument bug class
// (EvaluateAt(fsw, iLoad) for EvaluateAt(iLoad, fsw)).
func checkCallArgs(pass *Pass, call *ast.CallExpr) {
	fn := pass.CalleeFunc(call)
	if fn == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	n := params.Len()
	if sig.Variadic() {
		n-- // the variadic tail has one name for many values
	}
	if n > len(call.Args) {
		n = len(call.Args) // method value / partial application edge
	}
	for i := 0; i < n; i++ {
		p := params.At(i)
		if !IsFloat(p.Type()) {
			continue
		}
		dst := UnitOfName(p.Name())
		if !dst.Known || dst.Wild {
			continue
		}
		if src := inferExpr(pass, call.Args[i]); !dst.Compatible(src) {
			pass.Reportf(call.Args[i].Pos(), "passes %s as parameter %s of %s, whose name implies %s", src, p.Name(), fn.Name(), dst)
		}
	}
}

// checkReturns flags return values whose inferred unit contradicts the
// declared result name, or — for a function returning a single float
// (plus optionally an error) — the unit the function's own name implies.
func checkReturns(pass *Pass, fd *ast.FuncDecl) {
	if fd.Body == nil || fd.Type.Results == nil {
		return
	}
	// Resolve one unit per result position.
	var resUnits []Unit
	for _, fld := range fd.Type.Results.List {
		u := unitUnknown
		if len(fld.Names) > 0 {
			for _, name := range fld.Names {
				resUnits = append(resUnits, UnitOfName(name.Name))
			}
			continue
		}
		resUnits = append(resUnits, u)
	}
	// An unnamed leading float result inherits the function name's unit
	// when the signature is exactly (float64) or (float64, error).
	if len(resUnits) > 0 && !resUnits[0].Known && IsFloat(pass.TypeOf(fd.Type.Results.List[0].Type)) {
		if len(resUnits) == 1 || (len(resUnits) == 2 && isErrorExpr(pass, fd.Type.Results)) {
			resUnits[0] = UnitOfName(fd.Name.Name)
		}
	}
	any := false
	for _, u := range resUnits {
		if u.Known && !u.Wild {
			any = true
		}
	}
	if !any {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // nested literals have their own signatures
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || len(ret.Results) != len(resUnits) {
			return true
		}
		for i, e := range ret.Results {
			dst := resUnits[i]
			if !dst.Known || dst.Wild || !IsFloat(pass.TypeOf(e)) {
				continue
			}
			if src := inferExpr(pass, e); !dst.Compatible(src) {
				pass.Reportf(e.Pos(), "returns %s where %s declares %s", src, fd.Name.Name, dst)
			}
		}
		return true
	})
}

// isErrorExpr reports whether the last declared result is the error type.
func isErrorExpr(pass *Pass, results *ast.FieldList) bool {
	last := results.List[len(results.List)-1]
	t := pass.TypeOf(last.Type)
	return t != nil && t.String() == "error"
}

// destName renders an assignment destination for diagnostics.
func destName(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return e.Sel.Name
	case *ast.IndexExpr:
		return destName(e.X) + "[...]"
	case *ast.StarExpr:
		return destName(e.X)
	}
	return "destination"
}

// unitOfDest infers the unit an assignment destination's *name* declares
// (no expression propagation: the destination is a contract, not data).
func unitOfDest(e ast.Expr) Unit {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return UnitOfName(e.Name)
	case *ast.SelectorExpr:
		return UnitOfName(e.Sel.Name)
	case *ast.IndexExpr:
		return unitOfDest(e.X)
	case *ast.StarExpr:
		return unitOfDest(e.X)
	}
	return unitUnknown
}

// inferExpr propagates units bottom-up through an expression. Constants
// (literal or folded) are wild; non-float leaves are wild for numerics
// (loop counts, conversions) and unknown otherwise; every unprovable
// construct degrades to unknown rather than guessing.
func inferExpr(pass *Pass, e ast.Expr) Unit {
	e = ast.Unparen(e)
	if tv, ok := pass.Info.Types[e]; ok {
		if tv.Value != nil {
			return unitWild
		}
		if tv.Type != nil && !IsFloat(tv.Type) {
			if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsNumeric != 0 {
				return unitWild
			}
			return unitUnknown
		}
	}
	switch e := e.(type) {
	case *ast.Ident:
		return UnitOfName(e.Name)
	case *ast.SelectorExpr:
		return UnitOfName(e.Sel.Name)
	case *ast.IndexExpr:
		return unitOfDest(e.X)
	case *ast.StarExpr:
		return inferExpr(pass, e.X)
	case *ast.UnaryExpr:
		if e.Op == token.SUB || e.Op == token.ADD {
			return inferExpr(pass, e.X)
		}
	case *ast.BinaryExpr:
		ux, uy := inferExpr(pass, e.X), inferExpr(pass, e.Y)
		switch e.Op {
		case token.MUL:
			return ux.Mul(uy)
		case token.QUO:
			return ux.Div(uy)
		case token.ADD, token.SUB:
			// The mismatch itself is checkBinary's finding; the sum's unit
			// is whichever side knows it.
			if ux.Known && !ux.Wild {
				return ux
			}
			return uy
		}
	case *ast.CallExpr:
		return inferCall(pass, e)
	}
	return unitUnknown
}

// inferCall resolves the unit of a call result: conversions pass their
// operand through, the math package's shape-preserving functions
// propagate, Sqrt/Pow transform the vector, and a module function with a
// single float result (plus optionally error) takes its name's unit.
func inferCall(pass *Pass, call *ast.CallExpr) Unit {
	// Conversion: float64(expr) keeps the operand's unit (int operands
	// already landed on wild via the numeric gate).
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		return inferExpr(pass, call.Args[0])
	}
	fn := pass.CalleeFunc(call)
	if fn == nil {
		// Builtins: min/max preserve their operands' (agreeing) unit.
		if name := CalleeName(call); (name == "min" || name == "max") && len(call.Args) > 0 {
			return inferExpr(pass, call.Args[0])
		}
		return unitUnknown
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "math" && len(call.Args) >= 1 {
		arg := func(i int) Unit { return inferExpr(pass, call.Args[i]) }
		switch fn.Name() {
		case "Sqrt":
			return arg(0).Sqrt()
		case "Cbrt":
			u := arg(0)
			if u.Known && !u.Wild && !u.sameDim(unitDimensionless) {
				return unitUnknown
			}
			return u
		case "Abs", "Floor", "Ceil", "Trunc", "Round", "RoundToEven", "Copysign", "Nextafter":
			return arg(0)
		case "Min", "Max", "Mod", "Remainder", "Dim", "Hypot":
			if u := arg(0); u.Known {
				return u
			}
			if len(call.Args) > 1 {
				return arg(1)
			}
		case "Pow":
			if len(call.Args) == 2 {
				if tv, ok := pass.Info.Types[call.Args[1]]; ok && tv.Value != nil {
					if n, exact := exponentOf(tv); exact {
						return arg(0).Pow(n)
					}
				}
			}
		}
		return unitUnknown
	}
	// Module (or other source-typechecked) function: trust the name for a
	// single-float-result signature.
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return unitUnknown
	}
	res := sig.Results()
	single := res.Len() == 1 ||
		(res.Len() == 2 && res.At(1).Type().String() == "error")
	if single && IsFloat(res.At(0).Type()) {
		if res.At(0).Name() != "" {
			if u := UnitOfName(res.At(0).Name()); u.Known {
				return u
			}
		}
		return UnitOfName(fn.Name())
	}
	return unitUnknown
}

// exponentOf extracts a small integer exponent from a constant
// type-and-value, reporting false for fractional or huge exponents.
func exponentOf(tv types.TypeAndValue) (int, bool) {
	v := tv.Value
	if v == nil {
		return 0, false
	}
	// constant.Value: use the string form via types' exact representation.
	// Only small non-negative integers matter (Pow(x, 2), Pow(x, 3)).
	s := v.ExactString()
	n := 0
	for _, c := range s {
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int(c-'0')
		if n > 6 {
			return 0, false
		}
	}
	return n, true
}
