package analysis

import (
	"go/ast"
	"go/types"
)

// DroppedErr flags statements that call a function returning an error and
// discard it.
//
// The CSV/report writers are how experiment data leaves the tool; a
// dropped Write/Flush/Close error means a truncated results file that
// looks complete. The analyzer covers plain call statements, defer, and
// go statements whose callee's last result is error.
//
// Exemptions, tuned to this codebase's idioms:
//   - methods on *strings.Builder and *bytes.Buffer (documented to never
//     return a non-nil error);
//   - fmt.Print/Printf/Println (best-effort terminal output);
//   - fmt.Fprint* when the destination is os.Stdout, os.Stderr, a
//     *strings.Builder, or a *bytes.Buffer.
//
// To discard an error on purpose, assign it: `_ = f.Close()`.
var DroppedErr = &Analyzer{
	Name: "droppederr",
	Doc:  "flag call statements whose error result is discarded",
	Run:  runDroppedErr,
}

func runDroppedErr(pass *Pass) error {
	check := func(call *ast.CallExpr, how string) {
		if !returnsErrLast(pass, call) || exemptCall(pass, call) {
			return
		}
		name := CalleeName(call)
		if name == "" {
			name = "call"
		}
		pass.Reportf(call.Pos(), "error result of %s%s is discarded; handle it or assign it to _ explicitly", how, name)
	}
	pass.WalkFiles(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok {
				check(call, "")
			}
		case *ast.DeferStmt:
			check(n.Call, "deferred ")
		case *ast.GoStmt:
			check(n.Call, "go ")
		}
		return true
	})
	return nil
}

// returnsErrLast reports whether the call's last result is error.
func returnsErrLast(pass *Pass, call *ast.CallExpr) bool {
	tv, ok := pass.Info.Types[call.Fun]
	if !ok {
		return false
	}
	sig, ok := tv.Type.(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return false
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	return last.String() == "error"
}

// exemptCall applies the codebase-idiom exemptions.
func exemptCall(pass *Pass, call *ast.CallExpr) bool {
	fn := pass.CalleeFunc(call)
	if fn == nil {
		return false
	}
	full := fn.FullName()
	// Infallible in-memory writers.
	if recvIsBuffer(fn) {
		return true
	}
	switch full {
	case "fmt.Print", "fmt.Printf", "fmt.Println":
		return true
	case "fmt.Fprint", "fmt.Fprintf", "fmt.Fprintln":
		if len(call.Args) == 0 {
			return false
		}
		return bufferDest(pass, call.Args[0]) || stdStream(call.Args[0])
	}
	return false
}

// recvIsBuffer reports whether fn is a method on *strings.Builder or
// *bytes.Buffer.
func recvIsBuffer(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return isBufferType(sig.Recv().Type())
}

// bufferDest reports whether the expression's type is *strings.Builder
// or *bytes.Buffer.
func bufferDest(pass *Pass, e ast.Expr) bool {
	return isBufferType(pass.TypeOf(e))
}

func isBufferType(t types.Type) bool {
	if t == nil {
		return false
	}
	s := t.String()
	return s == "*strings.Builder" || s == "*bytes.Buffer" || s == "strings.Builder" || s == "bytes.Buffer"
}

// stdStream reports whether e is the selector os.Stdout or os.Stderr.
func stdStream(e ast.Expr) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	pkg, ok := sel.X.(*ast.Ident)
	if !ok || pkg.Name != "os" {
		return false
	}
	return sel.Sel.Name == "Stdout" || sel.Sel.Name == "Stderr"
}
