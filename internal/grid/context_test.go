package grid

import (
	"context"
	"errors"
	"math"
	"testing"
)

// TestPlaceIVRsContextCancelled checks run control on the placement
// heuristic: a cancelled context aborts with ctx.Err(), an uncancelled one
// reproduces PlaceIVRs bit-identically.
func TestPlaceIVRsContextCancelled(t *testing.T) {
	m, err := NewMesh(16, 16, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	cores := m.QuadCores()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.PlaceIVRsContext(ctx, 4, cores); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled PlaceIVRsContext returned %v, want context.Canceled", err)
	}
	want, err := m.PlaceIVRs(4, cores)
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.PlaceIVRsContext(context.Background(), 4, cores)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("context path placed %d taps, plain path %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("tap %d diverges: %v vs %v", i, got[i], want[i])
		}
	}
}

// TestWorstCaseResistanceContextCancelled checks the per-core fan-out
// honors cancellation and the nil-context path matches the plain entry.
func TestWorstCaseResistanceContextCancelled(t *testing.T) {
	m, err := NewMesh(12, 12, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	cores := m.QuadCores()
	taps := []Point{{6, 6}}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.WorstCaseResistanceContext(ctx, taps, cores); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled WorstCaseResistanceContext returned %v, want context.Canceled", err)
	}
	plain, err := m.WorstCaseResistance(taps, cores)
	if err != nil {
		t.Fatal(err)
	}
	withCtx, err := m.WorstCaseResistanceContext(context.Background(), taps, cores)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(plain-withCtx) != 0 {
		t.Fatalf("context path %.17g diverges from plain path %.17g", withCtx, plain)
	}
}

// TestSolverStatsCounts checks the direct-vs-CG telemetry moves when a
// solver is built on each path.
func TestSolverStatsCounts(t *testing.T) {
	// Small mesh: bandwidth 8 <= 64, direct path.
	small, err := NewMesh(8, 8, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	chol0, cg0 := SolverStats()
	if _, err := small.NewSolver([]Point{{4, 4}}); err != nil {
		t.Fatal(err)
	}
	chol1, cg1 := SolverStats()
	if chol1 != chol0+1 || cg1 != cg0 {
		t.Fatalf("direct solver moved counters (%d,%d)->(%d,%d), want one Cholesky",
			chol0, cg0, chol1, cg1)
	}
	// Wide mesh: short dimension 100 > 64 forces the CG fallback.
	big, err := NewMesh(100, 100, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := big.NewSolver([]Point{{50, 50}}); err != nil {
		t.Fatal(err)
	}
	chol2, cg2 := SolverStats()
	if cg2 != cg1+1 || chol2 != chol1 {
		t.Fatalf("fallback solver moved counters (%d,%d)->(%d,%d), want one CG",
			chol1, cg1, chol2, cg2)
	}
}
