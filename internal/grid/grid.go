// Package grid models the distributed on-chip power grid of the paper's
// Fig. 1 as a 2-D resistive mesh. It turns floorplan geometry — where the
// IVR outputs tap the grid and where the cores draw current — into the
// effective grid resistances the PDS analysis consumes, replacing the
// hand-set "grid impedance divided by the IVR count" approximation with a
// computed one.
//
// The mesh is a W x H array of tiles connected by the metal stack's sheet
// resistance. Regulator taps are ideal voltage sources (grounded nodes in
// the small-signal picture); cores inject their load currents. A Laplacian
// solve (sparse conjugate gradients) yields node potentials, from which
// per-core effective resistances and IR drops follow.
package grid

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"

	"ivory/internal/numeric"
	"ivory/internal/parallel"
)

// Point is a tile coordinate on the mesh.
type Point struct {
	X, Y int
}

// Mesh is a rectangular power-grid mesh.
type Mesh struct {
	// W and H are the tile counts in each dimension.
	W, H int
	// RTile is the resistance of one tile-to-tile link (ohm) — the sheet
	// resistance times the squares per tile pitch.
	RTile float64

	// Lazily assembled tapless Laplacians, shared by every Solver built on
	// this mesh (taps only add diagonal entries, so a clone-plus-diagonal
	// reproduces the from-scratch assembly exactly).
	mu        sync.Mutex
	bandLap   *numeric.SymBand
	sparseLap *numeric.SparseMatrix
}

// NewMesh validates and builds a mesh.
func NewMesh(w, h int, rTile float64) (*Mesh, error) {
	if w < 2 || h < 2 {
		return nil, fmt.Errorf("grid: mesh needs at least 2x2 tiles, got %dx%d", w, h)
	}
	if w*h > 1<<16 {
		return nil, fmt.Errorf("grid: mesh %dx%d too large", w, h)
	}
	if rTile <= 0 {
		return nil, fmt.Errorf("grid: tile resistance must be positive")
	}
	return &Mesh{W: w, H: h, RTile: rTile}, nil
}

func (m *Mesh) idx(p Point) int { return p.Y*m.W + p.X }

func (m *Mesh) inBounds(p Point) bool {
	return p.X >= 0 && p.X < m.W && p.Y >= 0 && p.Y < m.H
}

// laplacian builds the mesh conductance matrix with the tap nodes tied to
// the reference through a very large conductance (ideal regulators).
func (m *Mesh) laplacian(taps []Point) (*numeric.SparseMatrix, error) {
	if len(taps) == 0 {
		return nil, fmt.Errorf("grid: at least one regulator tap is required")
	}
	n := m.W * m.H
	sm := numeric.NewSparseMatrix(n)
	g := 1 / m.RTile
	for y := 0; y < m.H; y++ {
		for x := 0; x < m.W; x++ {
			i := m.idx(Point{x, y})
			if x+1 < m.W {
				j := m.idx(Point{x + 1, y})
				sm.AddDiag(i, g)
				sm.AddDiag(j, g)
				sm.AddSym(i, j, -g)
			}
			if y+1 < m.H {
				j := m.idx(Point{x, y + 1})
				sm.AddDiag(i, g)
				sm.AddDiag(j, g)
				sm.AddSym(i, j, -g)
			}
		}
	}
	gTap := g * 1e7 // taps are ~ideal vs the mesh links
	for _, t := range taps {
		if !m.inBounds(t) {
			return nil, fmt.Errorf("grid: tap %v outside the %dx%d mesh", t, m.W, m.H)
		}
		sm.AddDiag(m.idx(t), gTap)
	}
	return sm, nil
}

// sparseBase returns the cached tapless Laplacian in mesh row-major order,
// assembling it on first use.
func (m *Mesh) sparseBase() *numeric.SparseMatrix {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.sparseLap == nil {
		n := m.W * m.H
		sm := numeric.NewSparseMatrix(n)
		g := 1 / m.RTile
		for y := 0; y < m.H; y++ {
			for x := 0; x < m.W; x++ {
				i := m.idx(Point{x, y})
				if x+1 < m.W {
					j := m.idx(Point{x + 1, y})
					sm.AddDiag(i, g)
					sm.AddDiag(j, g)
					sm.AddSym(i, j, -g)
				}
				if y+1 < m.H {
					j := m.idx(Point{x, y + 1})
					sm.AddDiag(i, g)
					sm.AddDiag(j, g)
					sm.AddSym(i, j, -g)
				}
			}
		}
		m.sparseLap = sm
	}
	return m.sparseLap
}

// bandBase returns the cached tapless Laplacian in band form, ordered
// along the shorter mesh dimension to minimize bandwidth.
func (m *Mesh) bandBase() (*numeric.SymBand, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.bandLap == nil {
		n := m.W * m.H
		bw := m.W
		transposed := m.H < m.W
		if transposed {
			bw = m.H
		}
		idx := func(p Point) int {
			if transposed {
				return p.X*m.H + p.Y
			}
			return p.Y*m.W + p.X
		}
		sb, err := numeric.NewSymBand(n, bw)
		if err != nil {
			return nil, err
		}
		g := 1 / m.RTile
		for y := 0; y < m.H; y++ {
			for x := 0; x < m.W; x++ {
				i := idx(Point{x, y})
				if x+1 < m.W {
					j := idx(Point{x + 1, y})
					sb.Add(i, i, g)
					sb.Add(j, j, g)
					sb.Add(i, j, -g)
				}
				if y+1 < m.H {
					j := idx(Point{x, y + 1})
					sb.Add(i, i, g)
					sb.Add(j, j, g)
					sb.Add(i, j, -g)
				}
			}
		}
		m.bandLap = sb
	}
	return m.bandLap, nil
}

// EffectiveResistance returns the small-signal resistance seen by a load at
// p with all taps regulating: inject 1 A at p, read the potential. One-shot
// convenience; batch callers should build a Solver and reuse it.
func (m *Mesh) EffectiveResistance(taps []Point, p Point) (float64, error) {
	s, err := m.NewSolver(taps)
	if err != nil {
		return 0, err
	}
	return s.EffectiveResistance(p)
}

// IRDrop solves the full mesh with per-core load currents and returns each
// core's voltage drop below the regulated level (V).
func (m *Mesh) IRDrop(taps []Point, cores []Point, currents []float64) ([]float64, error) {
	s, err := m.NewSolver(taps)
	if err != nil {
		return nil, err
	}
	return s.IRDrop(cores, currents)
}

// WorstCaseResistance returns the largest effective resistance over the
// given core sites.
func (m *Mesh) WorstCaseResistance(taps, cores []Point) (float64, error) {
	return m.WorstCaseResistanceContext(nil, taps, cores)
}

// WorstCaseResistanceContext is WorstCaseResistance with run control: a
// cancelled ctx (nil selects the background context) stops the per-core
// fan-out and returns ctx.Err().
func (m *Mesh) WorstCaseResistanceContext(ctx context.Context, taps, cores []Point) (float64, error) {
	s, err := m.NewSolver(taps)
	if err != nil {
		return 0, err
	}
	return s.WorstCaseResistanceContext(ctx, cores)
}

// PlaceIVRs picks n tap sites minimizing the worst-case effective
// resistance over the core sites, by greedy farthest-point-style selection
// over a candidate lattice followed by exact evaluation. It is a floorplan
// heuristic, not an optimizer — good placements, deterministically.
func (m *Mesh) PlaceIVRs(n int, cores []Point) ([]Point, error) {
	return m.PlaceIVRsContext(nil, n, cores)
}

// PlaceIVRsContext is PlaceIVRs with run control: a cancelled ctx (nil
// selects the background context) stops the candidate scoring fan-out
// between solves and returns ctx.Err(). Uncancelled, the placement is
// bit-identical to PlaceIVRs for every worker schedule — candidates are
// reduced in scan order after the parallel scoring round.
func (m *Mesh) PlaceIVRsContext(ctx context.Context, n int, cores []Point) ([]Point, error) {
	if n < 1 {
		return nil, fmt.Errorf("grid: need at least one IVR")
	}
	if len(cores) == 0 {
		return nil, fmt.Errorf("grid: need at least one core site")
	}
	// Candidate lattice: a coarse sub-grid plus the core sites themselves.
	var candidates []Point
	stepX := m.W / 8
	if stepX < 1 {
		stepX = 1
	}
	stepY := m.H / 8
	if stepY < 1 {
		stepY = 1
	}
	for y := stepY / 2; y < m.H; y += stepY {
		for x := stepX / 2; x < m.W; x += stepX {
			candidates = append(candidates, Point{x, y})
		}
	}
	candidates = append(candidates, cores...)

	// Greedy: start from the centroid-closest candidate, then repeatedly
	// add the candidate that most reduces the worst-case resistance.
	var taps []Point
	cx, cy := 0, 0
	for _, c := range cores {
		cx += c.X
		cy += c.Y
	}
	centroid := Point{cx / len(cores), cy / len(cores)}
	sort.Slice(candidates, func(i, j int) bool {
		return dist2(candidates[i], centroid) < dist2(candidates[j], centroid)
	})
	if n >= len(cores) {
		// With enough regulators for point-of-load delivery, start from
		// the core sites themselves and let the greedy spend the surplus.
		taps = append(taps, cores...)
		taps = taps[:min(n, len(taps))]
	} else {
		taps = append(taps, candidates[0])
	}
	// Each round adds the candidate minimizing (worst, mean) core
	// resistance. The mean tie-break matters on symmetric floorplans:
	// when two far cores tie for the worst case, helping either one
	// cannot lower the max, and a pure worst-case greedy would stall.
	// Each tap set gets one Solver (one Laplacian assembly + factorization
	// shared by all core sites); the per-core solves run inline because the
	// candidate scoring loop below is already parallel.
	evaluate := func(ts []Point) (worst, mean float64, err error) {
		s, err := m.NewSolver(ts)
		if err != nil {
			return 0, 0, err
		}
		return s.worstMean(ctx, cores, 1)
	}
	for len(taps) < n {
		// Score every candidate concurrently, then reduce in index order so
		// the chosen tap is identical to the serial scan's.
		type score struct {
			w, mn float64
			err   error
			ok    bool
		}
		scores := make([]score, len(candidates))
		if err := parallel.ForContext(ctx, len(candidates), 0, func(i int) {
			cand := candidates[i]
			if containsPoint(taps, cand) {
				return
			}
			trial := make([]Point, len(taps)+1)
			copy(trial, taps)
			trial[len(taps)] = cand
			w, mn, err := evaluate(trial)
			scores[i] = score{w: w, mn: mn, err: err, ok: true}
		}); err != nil {
			return nil, err
		}
		bestW, bestM := math.Inf(1), math.Inf(1)
		var best Point
		for i, sc := range scores {
			if !sc.ok {
				continue
			}
			if sc.err != nil {
				return nil, sc.err
			}
			if sc.w < bestW-1e-12 || (math.Abs(sc.w-bestW) <= 1e-12 && sc.mn < bestM) {
				bestW, bestM = sc.w, sc.mn
				best = candidates[i]
			}
		}
		taps = append(taps, best)
	}
	// Compare against the core-aligned strategy: placing regulators at the
	// load sites themselves (point-of-load delivery). Greedy keeps its
	// centroid-seeded first tap forever, which can strand it on symmetric
	// floorplans; the core-aligned placement is often strictly better for
	// n <= len(cores).
	aligned := alignByFarthestPoint(cores, n)
	if len(aligned) == n {
		wG, _, err := evaluate(taps)
		if err != nil {
			return nil, err
		}
		wA, _, err := evaluate(aligned)
		if err != nil {
			return nil, err
		}
		if wA < wG {
			return aligned, nil
		}
	}
	return taps, nil
}

// alignByFarthestPoint picks min(n, len(cores)) core sites by farthest-point
// traversal (maximizing mutual spread), padding with repeats avoided.
func alignByFarthestPoint(cores []Point, n int) []Point {
	if n > len(cores) {
		n = len(cores)
	}
	out := []Point{cores[0]}
	for len(out) < n {
		bestD := -1
		var best Point
		for _, c := range cores {
			if containsPoint(out, c) {
				continue
			}
			// Distance to the nearest already-chosen site.
			nearest := int(^uint(0) >> 1)
			for _, o := range out {
				if d := dist2(c, o); d < nearest {
					nearest = d
				}
			}
			if nearest > bestD {
				bestD = nearest
				best = c
			}
		}
		out = append(out, best)
	}
	return out
}

func dist2(a, b Point) int {
	dx, dy := a.X-b.X, a.Y-b.Y
	return dx*dx + dy*dy
}

func containsPoint(ps []Point, p Point) bool {
	for _, q := range ps {
		if q == p {
			return true
		}
	}
	return false
}

// QuadCores returns four core sites at the quadrant centers — the 4-SM
// floorplan of the case study.
func (m *Mesh) QuadCores() []Point {
	return []Point{
		{m.W / 4, m.H / 4},
		{3 * m.W / 4, m.H / 4},
		{m.W / 4, 3 * m.H / 4},
		{3 * m.W / 4, 3 * m.H / 4},
	}
}
