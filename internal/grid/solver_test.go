package grid

import (
	"math"
	"testing"
)

// uncachedEffectiveResistance is the pre-Solver reference path: assemble
// the tapped Laplacian from scratch and restart CG from zero.
func uncachedEffectiveResistance(t *testing.T, m *Mesh, taps []Point, p Point) float64 {
	t.Helper()
	sm, err := m.laplacian(taps)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, sm.N())
	b[m.idx(p)] = 1
	x, _, err := sm.SolveCG(b, 1e-10, 0)
	if err != nil {
		t.Fatal(err)
	}
	return x[m.idx(p)]
}

func uncachedIRDrop(t *testing.T, m *Mesh, taps, cores []Point, currents []float64) []float64 {
	t.Helper()
	sm, err := m.laplacian(taps)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, sm.N())
	for k, c := range cores {
		b[m.idx(c)] += currents[k]
	}
	x, _, err := sm.SolveCG(b, 1e-10, 0)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]float64, len(cores))
	for k, c := range cores {
		out[k] = x[m.idx(c)]
	}
	return out
}

// tapSets returns 1-, 2-, and 4-tap sets for a mesh.
func tapSets(m *Mesh) [][]Point {
	c := Point{m.W / 2, m.H / 2}
	q := m.QuadCores()
	return [][]Point{
		{c},
		{q[0], q[3]},
		q,
	}
}

// TestSolverMatchesUncachedPath checks the cached-Laplacian solver against
// the assemble-from-scratch CG path within 1e-9, on meshes with 1, 2, and
// 4 taps, covering both the banded direct path (small meshes, incl. a
// non-square one exercising the transposed ordering) and the CG fallback
// (short dimension above the direct-path bandwidth limit).
func TestSolverMatchesUncachedPath(t *testing.T) {
	for _, dim := range []struct {
		w, h int
		r    float64
	}{{8, 8, 0.03}, {12, 10, 0.03}, {10, 14, 0.08}, {24, 24, 0.05}, {70, 70, 0.05}} {
		m, err := NewMesh(dim.w, dim.h, dim.r)
		if err != nil {
			t.Fatal(err)
		}
		cores := m.QuadCores()
		for _, taps := range tapSets(m) {
			s, err := m.NewSolver(taps)
			if err != nil {
				t.Fatalf("%dx%d taps %v: %v", dim.w, dim.h, taps, err)
			}
			for _, c := range cores {
				got, err := s.EffectiveResistance(c)
				if err != nil {
					t.Fatal(err)
				}
				want := uncachedEffectiveResistance(t, m, taps, c)
				if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
					t.Errorf("%dx%d taps %v core %v: solver R=%.15g, uncached %.15g",
						dim.w, dim.h, taps, c, got, want)
				}
			}
			currents := make([]float64, len(cores))
			for i := range currents {
				currents[i] = 1.5 + 0.5*float64(i)
			}
			got, err := s.IRDrop(cores, currents)
			if err != nil {
				t.Fatal(err)
			}
			want := uncachedIRDrop(t, m, taps, cores, currents)
			for i := range got {
				if math.Abs(got[i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
					t.Errorf("%dx%d taps %v: IR drop[%d] solver %.15g, uncached %.15g",
						dim.w, dim.h, taps, i, got[i], want[i])
				}
			}
			// The one-shot mesh methods route through the same solver.
			wr, err := m.WorstCaseResistance(taps, cores)
			if err != nil {
				t.Fatal(err)
			}
			sr, err := s.WorstCaseResistance(cores)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(wr-sr) > 0 {
				t.Errorf("%dx%d taps %v: mesh worst-case %g != solver %g", dim.w, dim.h, taps, wr, sr)
			}
		}
	}
}

// TestPlaceIVRsUnchangedByCachedSolver pins the greedy placement against
// the taps the pre-Solver implementation returned (captured before the
// change). The n=8 quad-core case had two exactly symmetric taps whose
// order the old CG rounding noise broke arbitrarily, so that case checks
// set equality plus the (identical) worst-case metric.
func TestPlaceIVRsUnchangedByCachedSolver(t *testing.T) {
	check := func(w, h int, rTile float64, n int, want []Point, asSet bool) {
		t.Helper()
		m, err := NewMesh(w, h, rTile)
		if err != nil {
			t.Fatal(err)
		}
		got, err := m.PlaceIVRs(n, m.QuadCores())
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("%dx%d n=%d: got %v, want %v", w, h, n, got, want)
		}
		for i := range want {
			if asSet {
				if !containsPoint(got, want[i]) {
					t.Fatalf("%dx%d n=%d: got %v, want the set %v", w, h, n, got, want)
				}
			} else if got[i] != want[i] {
				t.Fatalf("%dx%d n=%d: got %v, want %v", w, h, n, got, want)
			}
		}
	}
	// 24x24 case-study mesh (the gridscale experiment's configuration).
	check(24, 24, 0.05, 1, []Point{{13, 13}}, false)
	check(24, 24, 0.05, 2, []Point{{13, 13}, {10, 10}}, false)
	check(24, 24, 0.05, 4, []Point{{6, 6}, {18, 6}, {6, 18}, {18, 18}}, false)
	check(24, 24, 0.05, 8, []Point{{6, 6}, {18, 6}, {6, 18}, {18, 18}, {19, 19}, {7, 19}, {19, 7}, {7, 7}}, true)
	// Smaller and non-square meshes.
	check(8, 8, 0.03, 1, []Point{{4, 4}}, false)
	check(12, 10, 0.03, 2, []Point{{6, 4}, {7, 7}}, false)
	check(16, 16, 0.03, 4, []Point{{4, 4}, {12, 4}, {4, 12}, {12, 12}}, false)
}

// TestSolverValidation covers the solver's input contracts.
func TestSolverValidation(t *testing.T) {
	m, err := NewMesh(8, 8, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.NewSolver(nil); err == nil {
		t.Fatal("expected an error for an empty tap set")
	}
	if _, err := m.NewSolver([]Point{{99, 0}}); err == nil {
		t.Fatal("expected an error for an out-of-bounds tap")
	}
	s, err := m.NewSolver([]Point{{4, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.EffectiveResistance(Point{-1, 0}); err == nil {
		t.Fatal("expected an error for an out-of-bounds load point")
	}
	if _, err := s.IRDrop([]Point{{1, 1}}, []float64{1, 2}); err == nil {
		t.Fatal("expected an error for mismatched core/current lengths")
	}
	if _, err := s.WorstCaseResistance(nil); err == nil {
		t.Fatal("expected an error for an empty core list")
	}
	if got := s.Taps(); len(got) != 1 || got[0] != (Point{4, 4}) {
		t.Fatalf("Taps() = %v", got)
	}
}
