package grid

import (
	"math"
	"testing"
)

func mesh(t *testing.T, w, h int) *Mesh {
	t.Helper()
	m, err := NewMesh(w, h, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewMeshValidation(t *testing.T) {
	if _, err := NewMesh(1, 5, 0.1); err == nil {
		t.Error("1-wide mesh must fail")
	}
	if _, err := NewMesh(4, 4, 0); err == nil {
		t.Error("zero tile resistance must fail")
	}
	if _, err := NewMesh(1000, 1000, 0.1); err == nil {
		t.Error("oversized mesh must fail")
	}
}

func TestEffectiveResistanceBasics(t *testing.T) {
	m := mesh(t, 16, 16)
	tap := Point{8, 8}
	// Load at the tap itself: essentially zero resistance.
	r0, err := m.EffectiveResistance([]Point{tap}, tap)
	if err != nil {
		t.Fatal(err)
	}
	if r0 > 1e-6 {
		t.Errorf("resistance at the tap should be ~0, got %v", r0)
	}
	// Resistance grows with distance from the tap.
	rNear, err := m.EffectiveResistance([]Point{tap}, Point{9, 8})
	if err != nil {
		t.Fatal(err)
	}
	rFar, err := m.EffectiveResistance([]Point{tap}, Point{15, 15})
	if err != nil {
		t.Fatal(err)
	}
	if !(rNear > r0 && rFar > rNear) {
		t.Errorf("resistance should grow with distance: %v, %v, %v", r0, rNear, rFar)
	}
	// Bounds checks.
	if _, err := m.EffectiveResistance([]Point{tap}, Point{99, 0}); err == nil {
		t.Error("out-of-bounds load must fail")
	}
	if _, err := m.EffectiveResistance([]Point{{99, 99}}, tap); err == nil {
		t.Error("out-of-bounds tap must fail")
	}
	if _, err := m.EffectiveResistance(nil, tap); err == nil {
		t.Error("no taps must fail")
	}
}

// The case-study assumption: distributing N IVRs shrinks the worst-case
// grid resistance roughly like 1/N.
func TestDistributionScaling(t *testing.T) {
	m := mesh(t, 24, 24)
	cores := m.QuadCores()
	center := []Point{{12, 12}}
	r1, err := m.WorstCaseResistance(center, cores)
	if err != nil {
		t.Fatal(err)
	}
	// Two taps on the diagonal.
	r2, err := m.WorstCaseResistance([]Point{{6, 6}, {18, 18}}, cores)
	if err != nil {
		t.Fatal(err)
	}
	// Four taps at the quadrant centers (co-located with the cores).
	r4, err := m.WorstCaseResistance(cores, cores)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("R_eff: centralized %.4f, 2 taps %.4f, 4 taps %.4f", r1, r2, r4)
	if !(r1 > r2 && r2 > r4) {
		t.Errorf("distribution should reduce grid resistance: %v, %v, %v", r1, r2, r4)
	}
	// Ratio ballpark: 4 co-located taps nearly eliminate the spreading
	// resistance.
	if r4 > r1/3 {
		t.Errorf("4 co-located taps should cut resistance strongly: %v vs %v", r4, r1)
	}
}

func TestIRDropSuperposition(t *testing.T) {
	m := mesh(t, 16, 16)
	taps := []Point{{0, 0}}
	cores := []Point{{8, 8}, {15, 15}}
	// Linearity: doubling all currents doubles every drop.
	d1, err := m.IRDrop(taps, cores, []float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	d2, err := m.IRDrop(taps, cores, []float64{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	for k := range d1 {
		if math.Abs(d2[k]-2*d1[k]) > 1e-6*d1[k] {
			t.Errorf("core %d: drop not linear: %v vs %v", k, d1[k], d2[k])
		}
	}
	// Mismatched lengths.
	if _, err := m.IRDrop(taps, cores, []float64{1}); err == nil {
		t.Error("length mismatch must fail")
	}
}

func TestPlaceIVRsImproves(t *testing.T) {
	m := mesh(t, 24, 24)
	cores := m.QuadCores()
	taps1, err := m.PlaceIVRs(1, cores)
	if err != nil {
		t.Fatal(err)
	}
	taps4, err := m.PlaceIVRs(4, cores)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := m.WorstCaseResistance(taps1, cores)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := m.WorstCaseResistance(taps4, cores)
	if err != nil {
		t.Fatal(err)
	}
	if r4 >= r1 {
		t.Errorf("4 placed IVRs should beat 1: %v vs %v", r4, r1)
	}
	// A corner placement must be worse than the heuristic's choice.
	rCorner, err := m.WorstCaseResistance([]Point{{0, 0}}, cores)
	if err != nil {
		t.Fatal(err)
	}
	if r1 > rCorner {
		t.Errorf("heuristic single placement %v worse than a corner %v", r1, rCorner)
	}
	if _, err := m.PlaceIVRs(0, cores); err == nil {
		t.Error("zero IVRs must fail")
	}
	if _, err := m.PlaceIVRs(1, nil); err == nil {
		t.Error("no cores must fail")
	}
}

func TestQuadCoresInBounds(t *testing.T) {
	m := mesh(t, 10, 14)
	for _, c := range m.QuadCores() {
		if !m.inBounds(c) {
			t.Errorf("quad core %v out of bounds", c)
		}
	}
}
