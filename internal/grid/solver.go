package grid

import (
	"context"
	"fmt"
	"sync/atomic"

	"ivory/internal/numeric"
	"ivory/internal/parallel"
)

// Direct-factorization limits: the banded Cholesky path is used when the
// mesh's short dimension keeps the bandwidth small and the factor fits
// comfortably in memory; larger meshes fall back to conjugate gradients on
// a cloned sparse Laplacian.
const (
	maxDirectBandwidth = 64
	maxDirectEntries   = 1 << 21
)

// Package-wide solver telemetry: how many Solver contexts took the banded
// Cholesky direct path vs the CG fallback. Cumulative; per-run consumers
// (core.Explore's Stats) snapshot and diff.
var (
	solverCholesky atomic.Int64
	solverCG       atomic.Int64
)

// SolverStats returns the cumulative count of solver contexts built on the
// direct banded-Cholesky path and on the conjugate-gradient fallback.
// Counters are shared across concurrent runs — telemetry, not accounting.
func SolverStats() (cholesky, cg int64) {
	return solverCholesky.Load(), solverCG.Load()
}

// Solver is a per-tap-set solving context. It assembles the grounded mesh
// Laplacian once — reusing the mesh's cached tapless base, since regulator
// taps only touch the diagonal — and factors or preconditions it a single
// time, so every subsequent load point is a cheap solve instead of a full
// rebuild-and-restart. WorstCaseResistance and PlaceIVRs evaluate many
// (taps, core) pairs against the same tap set; this context is what makes
// those loops O(solve) instead of O(assemble + solve).
//
// A Solver is immutable after construction and safe for concurrent use.
type Solver struct {
	m    *Mesh
	taps []Point
	// Exactly one of chol (banded direct path) and sm (CG path) is non-nil.
	chol *numeric.BandCholesky
	sm   *numeric.SparseMatrix
	// transposed marks the band ordering: false = row-major y*W+x
	// (bandwidth W), true = column-major x*H+y (bandwidth H).
	transposed bool
}

// NewSolver validates the tap set and builds the solving context.
func (m *Mesh) NewSolver(taps []Point) (*Solver, error) {
	if len(taps) == 0 {
		return nil, fmt.Errorf("grid: at least one regulator tap is required")
	}
	for _, t := range taps {
		if !m.inBounds(t) {
			return nil, fmt.Errorf("grid: tap %v outside the %dx%d mesh", t, m.W, m.H)
		}
	}
	s := &Solver{m: m, taps: append([]Point(nil), taps...)}
	gTap := 1 / m.RTile * 1e7 // taps are ~ideal vs the mesh links
	bw := m.W
	if m.H < m.W {
		bw = m.H
		s.transposed = true
	}
	if bw <= maxDirectBandwidth && m.W*m.H*(bw+1) <= maxDirectEntries {
		base, err := m.bandBase()
		if err == nil {
			sb := base.Clone()
			for _, t := range taps {
				i := s.bandIdx(t)
				sb.Add(i, i, gTap)
			}
			if chol, err := sb.Cholesky(); err == nil {
				s.chol = chol
				solverCholesky.Add(1)
				return s, nil
			}
		}
		// An indefinite factorization cannot happen for a grounded mesh
		// Laplacian, but fall through to the iterative path rather than
		// fail: CG carries its own convergence diagnostics.
	}
	sm := m.sparseBase().Clone()
	for _, t := range taps {
		sm.AddDiag(m.idx(t), gTap)
	}
	s.sm = sm
	solverCG.Add(1)
	return s, nil
}

// bandIdx maps a point to its row in the band ordering, which runs along
// the shorter mesh dimension to minimize bandwidth.
func (s *Solver) bandIdx(p Point) int {
	if s.transposed {
		return p.X*s.m.H + p.Y
	}
	return p.Y*s.m.W + p.X
}

// index maps a point to its row in whichever matrix this solver holds.
func (s *Solver) index(p Point) int {
	if s.chol != nil {
		return s.bandIdx(p)
	}
	return s.m.idx(p)
}

// Taps returns the tap set this context was built for.
func (s *Solver) Taps() []Point { return append([]Point(nil), s.taps...) }

// solve returns the node potentials for the given injection vector
// (indexed per s.index).
func (s *Solver) solve(b []float64) ([]float64, error) {
	if s.chol != nil {
		return s.chol.Solve(b)
	}
	x, _, err := s.sm.SolveCG(b, 1e-10, 0)
	return x, err
}

// EffectiveResistance returns the small-signal resistance seen by a load
// at p with all taps regulating: inject 1 A at p, read the potential.
func (s *Solver) EffectiveResistance(p Point) (float64, error) {
	if !s.m.inBounds(p) {
		return 0, fmt.Errorf("grid: load point %v outside the mesh", p)
	}
	n := s.m.W * s.m.H
	b := make([]float64, n)
	b[s.index(p)] = 1
	x, err := s.solve(b)
	if err != nil {
		return 0, err
	}
	return x[s.index(p)], nil
}

// IRDrop solves the mesh with per-core load currents and returns each
// core's voltage drop below the regulated level (V).
func (s *Solver) IRDrop(cores []Point, currents []float64) ([]float64, error) {
	if len(cores) != len(currents) {
		return nil, fmt.Errorf("grid: %d cores but %d currents", len(cores), len(currents))
	}
	n := s.m.W * s.m.H
	b := make([]float64, n)
	for k, c := range cores {
		if !s.m.inBounds(c) {
			return nil, fmt.Errorf("grid: core %v outside the mesh", c)
		}
		b[s.index(c)] += currents[k]
	}
	x, err := s.solve(b)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(cores))
	for k, c := range cores {
		out[k] = x[s.index(c)]
	}
	return out, nil
}

// WorstCaseResistance returns the largest effective resistance over the
// given core sites, fanning the independent per-core solves across CPUs.
func (s *Solver) WorstCaseResistance(cores []Point) (float64, error) {
	return s.WorstCaseResistanceContext(nil, cores)
}

// WorstCaseResistanceContext is WorstCaseResistance with run control: a
// cancelled ctx (nil selects the background context) stops dispatching
// per-core solves and returns ctx.Err() once in-flight solves drain.
func (s *Solver) WorstCaseResistanceContext(ctx context.Context, cores []Point) (float64, error) {
	worst, _, err := s.worstMean(ctx, cores, 0)
	return worst, err
}

// worstMean evaluates every core against this tap set and returns the
// (max, mean) effective resistance — the greedy placement's objective.
// Per-core solves are independent, so they run across workers goroutines
// (1 = inline, for callers that already parallelize one level up); the
// reduction over the deterministic per-core results keeps the outcome
// exact regardless of worker count.
func (s *Solver) worstMean(ctx context.Context, cores []Point, workers int) (worst, mean float64, err error) {
	if len(cores) == 0 {
		return 0, 0, fmt.Errorf("grid: need at least one core site")
	}
	rs := make([]float64, len(cores))
	errs := make([]error, len(cores))
	if err := parallel.ForContext(ctx, len(cores), workers, func(i int) {
		rs[i], errs[i] = s.EffectiveResistance(cores[i])
	}); err != nil {
		return 0, 0, err
	}
	for i, e := range errs {
		if e != nil {
			return 0, 0, e
		}
		if rs[i] > worst {
			worst = rs[i]
		}
		mean += rs[i]
	}
	return worst, mean / float64(len(cores)), nil
}
