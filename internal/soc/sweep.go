package soc

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"ivory/internal/numeric"
	"ivory/internal/parallel"
	"ivory/internal/pds"
	"ivory/internal/sc"
)

// Sweep defaults.
const (
	// DefaultT and DefaultDt are the per-cell simulation span and step: a
	// 10 µs window resolves the grid/package resonances and at least one
	// full cycle of the default phase schedules at a quarter of the
	// case-study cell cost.
	DefaultT  = 10e-6
	DefaultDt = 5e-9
	// DefaultTop bounds the ranked candidate list a sweep retains when
	// SweepSpec.Top is 0; -1 retains every feasible assignment.
	DefaultTop = 100
	// maxAssignments caps the enumerable assignment space (rails ^
	// domains); larger sweeps must shrink the rail menu or split the
	// floorplan.
	maxAssignments = 1 << 20
)

// SweepSpec describes one hybrid rail-assignment sweep.
type SweepSpec struct {
	// Floorplan is the SoC under study; nil selects DefaultFloorplan.
	Floorplan *Floorplan
	// Rails is the per-domain delivery menu (shared by all domains); empty
	// selects DefaultRails. The menu is canonically sorted and deduped, so
	// listing order never affects results.
	Rails []Rail
	// AreaBudgetMM2 is the shared on-chip regulator area budget (mm²)
	// across all domains; 0 disables the constraint.
	AreaBudgetMM2 float64
	// T and Dt are the per-cell simulation span and step (s); zero selects
	// DefaultT / DefaultDt.
	T, Dt float64
	// Top bounds the ranked candidates retained on the result (0 selects
	// DefaultTop, negative retains all).
	Top int
	// Workers bounds the cell-evaluation pool; 0 uses one worker per CPU
	// (the parallel package default). Results are bit-identical at any
	// worker count.
	Workers int
	// Context, when non-nil, cancels a running sweep.
	Context context.Context
	// IVRDesign optionally supplies the chip-level SC converter, sized for
	// the whole floorplan; each domain receives a TDP-proportional slice.
	// Nil builds AutoIVRDesign per domain.
	IVRDesign *sc.Design
	// LDOHeadroomV is the digital-LDO input headroom (V); 0 selects
	// DefaultLDOHeadroomV.
	LDOHeadroomV float64
}

// Cell is one domain × rail evaluation: the transient noise summary, the
// extracted guardband, the on-chip regulator area, and the domain's
// steady-state delivery ladder at that guardband.
type Cell struct {
	// Domain and Rail identify the cell; Config is the rail's descriptive
	// label (matching pds result Config names).
	Domain string
	Rail   Rail
	Config string
	// VStats summarizes the worst block's supply voltage over the
	// transient window.
	VStats numeric.Summary
	// NoiseVpp is max-min of the core voltage (V); WorstDroop is
	// VNominal - min (V); MarginV is the guardband fed into the power
	// ladder (WorstDroop clamped at 0).
	NoiseVpp   float64
	WorstDroop float64
	MarginV    float64
	// AreaM2 is the on-chip regulator area this rail spends on the domain
	// (m²); zero for the off-chip VRM.
	AreaM2 float64
	// PCoreW / PSourceW / Efficiency are the domain's delivery ladder at
	// the guardband: useful core power, total source draw, and their
	// ratio.
	PCoreW     float64
	PSourceW   float64
	Efficiency float64
	// Infeasible carries the rejection reason when this rail cannot serve
	// the domain (distribution count not dividing the cores, load beyond
	// a dropout limit, ...); assignments using an infeasible cell are
	// rejected, not errored.
	Infeasible string
}

// Candidate is one ranked per-domain rail assignment.
type Candidate struct {
	// Rails assigns one rail per floorplan domain, in floorplan order.
	Rails []Rail
	// Key is the canonical label ("cpu-big=ivr4,gpu=vrm,..."), unique per
	// assignment and the deterministic tie-break of the ranking.
	Key string
	// AreaM2 is the summed on-chip regulator area (m²).
	AreaM2 float64
	// PCoreW / PSourceW / Efficiency aggregate the per-domain ladders:
	// Efficiency = ΣPCore / ΣPSource, the guardband-aware delivery
	// efficiency candidates are ranked by.
	PCoreW     float64
	PSourceW   float64
	Efficiency float64
	// WorstMarginV is the largest per-domain guardband in the assignment.
	WorstMarginV float64
}

// SweepStats is the run telemetry.
type SweepStats struct {
	// Cells is the evaluated domain × rail grid size; CellsInfeasible
	// counts cells no assignment can use.
	Cells           int
	CellsInfeasible int
	// Assignments is the enumerable space (rails ^ domains); Ranked
	// counts assignments that survived feasibility and budget;
	// RejectedInfeasible / RejectedArea count the rest, including whole
	// subtrees pruned on an infeasible or over-budget prefix (the
	// branch-and-bound shortcut — per-domain areas are non-negative, so a
	// busted prefix can never recover).
	Assignments        int
	Ranked             int
	RejectedInfeasible int
	RejectedArea       int
	// Wall is the elapsed sweep time; AssignmentsPerSec is
	// Assignments/Wall.
	Wall              time.Duration
	AssignmentsPerSec float64
}

// SweepResult is the outcome of one hybrid sweep.
type SweepResult struct {
	// Floorplan names the swept floorplan; Rails echoes the normalized
	// menu; T/Dt/AreaBudgetMM2/LDOHeadroomV echo the defaulted inputs.
	Floorplan     string
	Rails         []Rail
	T, Dt         float64
	AreaBudgetMM2 float64
	LDOHeadroomV  float64
	// Cells is the domain-major, rail-minor evaluation grid
	// (len = domains × rails).
	Cells []Cell
	// Candidates is the ranked assignment list (best first), bounded to
	// the spec's Top.
	Candidates []Candidate
	Stats      SweepStats
}

// Best returns the top-ranked candidate, or nil when nothing was feasible.
func (r *SweepResult) Best() *Candidate {
	if len(r.Candidates) == 0 {
		return nil
	}
	return &r.Candidates[0]
}

// scratchPool recycles transient-engine buffers across cell evaluations.
var scratchPool = sync.Pool{New: func() any { return &pds.Scratch{} }}

// Sweep evaluates the domain × rail cell grid in parallel (deterministic
// per-index slots, bit-identical at any worker count), then enumerates
// per-domain assignments serially in canonical order — domains in
// floorplan order, rails in canonical rail order, last domain cycling
// fastest — pruning subtrees whose prefix is already infeasible or over
// budget, and ranks the survivors by aggregate delivery efficiency
// (ties broken by canonical key, ascending).
func Sweep(spec SweepSpec) (*SweepResult, error) {
	ctx := spec.Context
	if ctx == nil {
		ctx = context.Background()
	}
	fl := spec.Floorplan
	if fl == nil {
		var err error
		if fl, err = DefaultFloorplan(); err != nil {
			return nil, err
		}
	}
	if err := fl.Validate(); err != nil {
		return nil, err
	}
	rails, err := NormalizeRails(spec.Rails)
	if err != nil {
		return nil, err
	}
	T, dt := spec.T, spec.Dt
	if T == 0 {
		T = DefaultT
	}
	if dt == 0 {
		dt = DefaultDt
	}
	if T <= 0 || dt <= 0 || int(T/dt) < 16 {
		return nil, fmt.Errorf("soc: span %g s at step %g s leaves no usable trace", T, dt)
	}
	headroomV := spec.LDOHeadroomV
	if headroomV == 0 {
		headroomV = DefaultLDOHeadroomV
	}
	if headroomV < 0 {
		return nil, fmt.Errorf("soc: negative LDO headroom %g", headroomV)
	}
	if spec.AreaBudgetMM2 < 0 {
		return nil, fmt.Errorf("soc: negative area budget %g", spec.AreaBudgetMM2)
	}
	D, R := len(fl.Domains), len(rails)
	assignments := 1
	for range fl.Domains {
		if assignments > maxAssignments/R {
			return nil, fmt.Errorf("soc: %d domains × %d rails exceeds the %d-assignment cap", D, R, maxAssignments)
		}
		assignments *= R
	}
	// Per-domain IVR base designs, sized (or sliced) by TDP share.
	designs := make([]*sc.Design, D)
	totalTDP := fl.TotalTDP()
	for i, d := range fl.Domains {
		if spec.IVRDesign != nil {
			designs[i], err = scaledDesign(spec.IVRDesign, d.TDP()/totalTDP)
		} else {
			designs[i], err = AutoIVRDesign(d.TDP(), d.VNominal)
		}
		if err != nil {
			return nil, fmt.Errorf("soc: domain %q IVR design: %w", d.Name, err)
		}
	}

	start := time.Now()
	res := &SweepResult{
		Floorplan:     fl.Name,
		Rails:         rails,
		T:             T,
		Dt:            dt,
		AreaBudgetMM2: spec.AreaBudgetMM2,
		LDOHeadroomV:  headroomV,
		Cells:         make([]Cell, D*R),
	}
	errs := make([]error, D*R)
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	ferr := parallel.ForContext(runCtx, D*R, spec.Workers, func(i int) {
		di, ri := i/R, i%R
		scr := scratchPool.Get().(*pds.Scratch)
		cell, cerr := evaluateCell(runCtx, fl, fl.Domains[di], rails[ri], designs[di], T, dt, headroomV, scr)
		scratchPool.Put(scr)
		if cerr != nil {
			errs[i] = cerr
			cancel()
			return
		}
		res.Cells[i] = cell
	})
	for _, e := range errs {
		if e != nil {
			return nil, e
		}
	}
	if ferr != nil {
		return nil, ferr
	}
	res.Stats.Cells = D * R
	for _, c := range res.Cells {
		if c.Infeasible != "" {
			res.Stats.CellsInfeasible++
		}
	}
	res.Stats.Assignments = assignments

	keep := spec.Top
	if keep == 0 {
		keep = DefaultTop
	}
	if err := enumerate(ctx, res, fl, rails, keep); err != nil {
		return nil, err
	}
	sortCandidates(res.Candidates)
	if keep > 0 && len(res.Candidates) > keep {
		res.Candidates = res.Candidates[:keep]
	}
	res.Stats.Wall = time.Since(start)
	if s := res.Stats.Wall.Seconds(); s > 0 {
		res.Stats.AssignmentsPerSec = float64(assignments) / s
	}
	return res, nil
}

// evaluateCell runs one domain × rail transient plus its steady-state
// ladder. Domain-level infeasibility (a distribution count that cannot
// serve the cores, a load beyond a dropout limit) is recorded on the cell;
// only cancellation and floorplan-level faults return an error.
func evaluateCell(ctx context.Context, fl *Floorplan, d Domain, r Rail, ivrBase *sc.Design, T, dt, headroomV float64, scr *pds.Scratch) (Cell, error) {
	cell := Cell{Domain: d.Name, Rail: r, Config: r.Label()}
	sys := fl.system(d)
	opt := pds.SimOptions{Scratch: scr}
	var nr *pds.NoiseResult
	var simErr error
	areaM2 := 0.0
	iDomain := d.TDP() / d.VNominal
	efficiency := 0.0 // regulator conversion efficiency where one exists
	switch r.Kind {
	case OffChipVRM:
		nr, simErr = sys.SimulateOffChipVRMContext(ctx, d.Workload, T, dt, opt)
	case CentralizedIVR, DistributedIVR:
		n := 1
		if r.Kind == DistributedIVR {
			n = r.N
		}
		areaM2 = ivrBase.Area()
		m, err := ivrBase.Evaluate(iDomain)
		if err != nil {
			cell.Infeasible = err.Error()
			return cell, nil
		}
		efficiency = m.Efficiency
		nr, simErr = sys.SimulateIVRContext(ctx, ivrBase, n, d.Workload, T, dt, opt)
	case DigitalLDO:
		des, err := ldoDesignFor(d, headroomV)
		if err != nil {
			cell.Infeasible = err.Error()
			return cell, nil
		}
		areaM2 = des.Area()
		m, err := des.Evaluate(iDomain)
		if err != nil {
			cell.Infeasible = err.Error()
			return cell, nil
		}
		efficiency = m.Efficiency
		nr, simErr = sys.SimulateDigitalLDOContext(ctx, des, d.Workload, T, dt, opt)
	default:
		return cell, fmt.Errorf("soc: unknown rail kind %d", int(r.Kind))
	}
	if simErr != nil {
		if err := ctx.Err(); err != nil {
			return cell, err
		}
		cell.Infeasible = simErr.Error()
		return cell, nil
	}
	margin := nr.WorstDroop
	if margin < 0 {
		margin = 0
	}
	cell.VStats = nr.VStats
	cell.NoiseVpp = nr.NoiseVpp
	cell.WorstDroop = nr.WorstDroop
	cell.MarginV = margin
	cell.AreaM2 = areaM2

	params := pds.BreakdownParams{Config: r.Label(), Margin: margin}
	var bd pds.Breakdown
	var bdErr error
	switch r.Kind {
	case OffChipVRM:
		// The board VRM must produce the core voltage plus margin.
		vrmEff, err := boardVRMEfficiency(fl.VSource, d.VNominal+margin, d.TDP())
		if err != nil {
			cell.Infeasible = err.Error()
			return cell, nil
		}
		params.VRMEfficiency = vrmEff
		bd, bdErr = sys.PowerBreakdown(params)
	case CentralizedIVR, DistributedIVR:
		params.IVREfficiency = efficiency
		// The 3.3 V board rail reaches the IVRs with light conditioning.
		params.VRMEfficiency = 0.97
		params.NumIVRs = 1
		if r.Kind == DistributedIVR {
			params.NumIVRs = r.N
		}
		bd, bdErr = sys.PowerBreakdown(params)
	case DigitalLDO:
		params.IVREfficiency = efficiency
		vrmEff, err := boardVRMEfficiency(fl.VSource, d.VNominal+margin+headroomV, d.TDP())
		if err != nil {
			cell.Infeasible = err.Error()
			return cell, nil
		}
		params.VRMEfficiency = vrmEff
		bd, bdErr = sys.PowerBreakdownLDO(params, headroomV)
	}
	if bdErr != nil {
		cell.Infeasible = bdErr.Error()
		return cell, nil
	}
	cell.PCoreW = bd.PCoreUseful
	cell.PSourceW = bd.PSource
	cell.Efficiency = bd.Efficiency
	return cell, nil
}

// enumerate walks the assignment space depth-first in canonical order,
// pruning on infeasible or over-budget prefixes (every extension of a
// busted prefix is counted rejected without being visited), and appends
// surviving candidates with periodic compaction so retention stays
// bounded even on large spaces.
func enumerate(ctx context.Context, res *SweepResult, fl *Floorplan, rails []Rail, keep int) error {
	D, R := len(fl.Domains), len(rails)
	// powR[k] = R^k: the subtree size below a pruned prefix.
	powR := make([]int, D+1)
	powR[0] = 1
	for k := 1; k <= D; k++ {
		powR[k] = powR[k-1] * R
	}
	budgetM2 := res.AreaBudgetMM2 * 1e-6
	idx := make([]int, D)
	compactAt := 4 * keep
	if compactAt < 1024 {
		compactAt = 1024
	}
	var walk func(level int, areaM2, pCoreW, pSourceW, worstMarginV float64) error
	walk = func(level int, areaM2, pCoreW, pSourceW, worstMarginV float64) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		if level == D {
			res.Stats.Ranked++
			c := Candidate{
				Rails:        make([]Rail, D),
				AreaM2:       areaM2,
				PCoreW:       pCoreW,
				PSourceW:     pSourceW,
				Efficiency:   pCoreW / pSourceW,
				WorstMarginV: worstMarginV,
			}
			var key strings.Builder
			for i, ri := range idx {
				if i > 0 {
					key.WriteByte(',')
				}
				key.WriteString(fl.Domains[i].Name)
				key.WriteByte('=')
				key.WriteString(rails[ri].String())
				c.Rails[i] = rails[ri]
			}
			c.Key = key.String()
			res.Candidates = append(res.Candidates, c)
			if keep > 0 && len(res.Candidates) >= compactAt {
				sortCandidates(res.Candidates)
				res.Candidates = res.Candidates[:keep]
			}
			return nil
		}
		below := powR[D-level-1]
		for ri := 0; ri < R; ri++ {
			cell := &res.Cells[level*R+ri]
			if cell.Infeasible != "" {
				res.Stats.RejectedInfeasible += below
				continue
			}
			a := areaM2 + cell.AreaM2
			if budgetM2 > 0 && a > budgetM2 {
				res.Stats.RejectedArea += below
				continue
			}
			m := worstMarginV
			if cell.MarginV > m {
				m = cell.MarginV
			}
			idx[level] = ri
			if err := walk(level+1, a, pCoreW+cell.PCoreW, pSourceW+cell.PSourceW, m); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(0, 0, 0, 0, 0)
}

// sortCandidates ranks by delivery efficiency (descending), canonical key
// ascending on ties — a strict total order, so ranked output is invariant
// across worker counts and retention compactions.
func sortCandidates(cands []Candidate) {
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].Efficiency > cands[j].Efficiency {
			return true
		}
		if cands[i].Efficiency < cands[j].Efficiency {
			return false
		}
		return cands[i].Key < cands[j].Key
	})
}
