// Package soc models heterogeneous SoC power delivery: a floorplan of
// named power domains (CPU clusters, GPU, memory controller, uncore,
// accelerators), each with its own workload, TDP, nominal voltage, and
// grid-region geometry, plus a per-domain rail assignment — off-chip VRM,
// centralized IVR, distributed IVRs, or a digital LDO — and an optimizer
// that ranks assignments under a shared on-chip regulator area budget.
//
// The paper's case study stops at one fixed 4-SM rail; the FlexWatts
// direction this package opens asks the hybrid question instead: which
// domains deserve an IVR? Every domain evaluation composes the existing
// internal/pds transient machinery (a one-domain floorplan reproduces the
// paper's 4-SM results bit-for-bit — the equivalence test pins it), so the
// subsystem adds scenario structure, not a second simulator.
//
// Modeling scope: domains are evaluated independently against the shared
// off-chip network — cross-domain PDN coupling is neglected, consistent
// with the per-configuration treatment of the existing case study. Because
// of that independence the sweep simulates only the |domains| × |rails|
// cell grid and combines cells arithmetically per assignment, which is
// what makes exhaustive assignment enumeration affordable.
package soc

import (
	"fmt"

	"ivory/internal/buck"
	"ivory/internal/ldo"
	"ivory/internal/pdn"
	"ivory/internal/pds"
	"ivory/internal/sc"
	"ivory/internal/tech"
	"ivory/internal/topology"
	"ivory/internal/workload"
)

// Domain is one power domain of the floorplan.
type Domain struct {
	// Name identifies the domain; it enters candidate labels and the
	// default per-domain seed derivation, so it must be unique.
	Name string
	// Cores is the number of identical load blocks in the domain.
	Cores int
	// TDPPerCore is each block's average power at nominal voltage (W).
	TDPPerCore float64
	// VNominal is the domain's nominal supply (V).
	VNominal float64
	// GridR and GridL are the domain's on-chip grid impedance from a
	// centralized regulation point to a block; distributing N IVRs divides
	// both by N (the pds.System convention).
	GridR, GridL float64
	// Load is the block current model; a zero value derives the default
	// (PNominal = TDPPerCore at VNominal, 25% leakage — the case-study
	// load character).
	Load workload.LoadModel
	// Workload drives the domain: a workload.Benchmark or a
	// workload.PhaseSchedule.
	Workload workload.Source
	// Seed overrides the domain's trace seed; 0 derives
	// floorplan.Seed XOR FNV-1a(domain name), giving sibling domains
	// running the same benchmark distinct streams.
	Seed int64
}

// TDP returns the domain's total average power (W).
func (d Domain) TDP() float64 { return d.TDPPerCore * float64(d.Cores) }

// Floorplan is the SoC under study: the shared board supply and off-chip
// network plus the power domains.
type Floorplan struct {
	// Name labels the floorplan in results.
	Name string
	// VSource is the board supply feeding every rail (V).
	VSource float64
	// Network is the shared off-chip PDN (board + package + die). It is
	// read-only during a sweep, so domains evaluate against it in
	// parallel.
	Network *pdn.Network
	// Domains are the power domains, in canonical (enumeration) order.
	Domains []Domain
	// Seed makes workload synthesis reproducible; per-domain seeds derive
	// from it unless a Domain overrides its own.
	Seed int64
}

// Validate checks the floorplan.
func (f *Floorplan) Validate() error {
	if f == nil {
		return fmt.Errorf("soc: nil floorplan")
	}
	if f.VSource <= 0 {
		return fmt.Errorf("soc: VSource must be positive")
	}
	if f.Network == nil {
		return fmt.Errorf("soc: off-chip network is required")
	}
	if len(f.Domains) == 0 {
		return fmt.Errorf("soc: floorplan needs at least one domain")
	}
	seen := make(map[string]bool, len(f.Domains))
	for i, d := range f.Domains {
		if d.Name == "" {
			return fmt.Errorf("soc: domain %d has no name", i)
		}
		if seen[d.Name] {
			return fmt.Errorf("soc: duplicate domain name %q", d.Name)
		}
		seen[d.Name] = true
		if d.Cores < 1 {
			return fmt.Errorf("soc: domain %q needs at least one core", d.Name)
		}
		if d.TDPPerCore <= 0 {
			return fmt.Errorf("soc: domain %q TDPPerCore must be positive", d.Name)
		}
		if d.VNominal <= 0 || d.VNominal >= f.VSource {
			return fmt.Errorf("soc: domain %q VNominal %g outside (0, VSource)", d.Name, d.VNominal)
		}
		if d.GridR < 0 || d.GridL < 0 {
			return fmt.Errorf("soc: domain %q has negative grid impedance", d.Name)
		}
		if d.Workload == nil {
			return fmt.Errorf("soc: domain %q has no workload", d.Name)
		}
		if v, ok := d.Workload.(interface{ Validate() error }); ok {
			if err := v.Validate(); err != nil {
				return fmt.Errorf("soc: domain %q workload: %w", d.Name, err)
			}
		}
	}
	return nil
}

// TotalTDP returns the floorplan's total average power (W).
func (f *Floorplan) TotalTDP() float64 {
	total := 0.0
	for _, d := range f.Domains {
		total += d.TDP()
	}
	return total
}

// domainSeed is the default per-domain seed derivation; Domain.Seed
// overrides it.
func domainSeed(base int64, name string) int64 {
	h := fnv1aString(fnvOffset64, name)
	return base ^ int64(h)
}

// FNV-1a constants matching internal/pds and internal/workload.
const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

func fnv1aString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime64
	}
	return h
}

// system realizes one domain as a pds.System — field-for-field, so a
// one-domain floorplan reproduces the direct pds path bit-identically.
func (f *Floorplan) system(d Domain) *pds.System {
	load := d.Load
	if load.PNominal == 0 {
		load = workload.LoadModel{PNominal: d.TDPPerCore, VNominal: d.VNominal, LeakFraction: 0.25}
	}
	seed := d.Seed
	if seed == 0 {
		seed = domainSeed(f.Seed, d.Name)
	}
	return &pds.System{
		Cores:      d.Cores,
		TDPPerCore: d.TDPPerCore,
		VNominal:   d.VNominal,
		VSource:    f.VSource,
		Load:       load,
		GridR:      d.GridR,
		GridL:      d.GridL,
		Network:    f.Network,
		Seed:       seed,
	}
}

// refTDPW anchors the proven chip-level SC recipe: the case-study design
// (SeriesParallel 3:1, 45 nm deep-trench, 2.4 µF / 4000 S / 400 nF at
// 32-way interleave) is sized for a 20 W, ~24 A platform; AutoIVRDesign
// scales its reactive and conductive totals linearly with domain TDP.
const refTDPW = 20.0

// AutoIVRDesign builds a chip-level SC converter for a domain of the given
// TDP and output voltage: the case-study recipe with CTotal/GTotal/CDecap
// scaled by tdpW/20 W. It is the default when SweepSpec.IVRDesign is nil.
func AutoIVRDesign(tdpW, vOut float64) (*sc.Design, error) {
	if tdpW <= 0 {
		return nil, fmt.Errorf("soc: design TDP %g must be positive", tdpW)
	}
	top, err := topology.SeriesParallel(3, 1)
	if err != nil {
		return nil, err
	}
	an, err := top.Analyze()
	if err != nil {
		return nil, err
	}
	scale := tdpW / refTDPW
	return sc.New(sc.Config{
		Analysis:   an,
		Node:       tech.MustLookup("45nm"),
		CapKind:    tech.DeepTrench,
		VIn:        3.3,
		VOut:       vOut,
		CTotal:     2.4e-6 * scale,
		GTotal:     4000 * scale,
		CDecap:     400e-9 * scale,
		Interleave: 32,
		FSwMax:     500e6,
	})
}

// scaledDesign resizes a chip-level SC design to a fraction of its
// capacity by scaling the reactive and conductive totals; frac 1 rebuilds
// an identical design (x·1.0 is exact in float64), which the one-domain
// equivalence contract depends on.
func scaledDesign(base *sc.Design, frac float64) (*sc.Design, error) {
	cfg := base.Config()
	cfg.CTotal *= frac
	cfg.GTotal *= frac
	cfg.CDecap *= frac
	return sc.New(cfg)
}

// DefaultLDOHeadroomV is the digital-LDO input headroom above the domain's
// operating voltage: low enough that the linear conversion stays
// competitive, high enough that the pass array has authority over load
// steps.
const DefaultLDOHeadroomV = 0.15

// ldoDesignFor sizes a centralized digital LDO for one domain: the pass
// array carries twice the domain's nominal current at the headroom (so
// the 1.25·TDP workload clamp plus schedule scaling stays inside the
// dropout limit), and the output capacitance scales with load current to
// bound the limit-cycle ripple at the 250 MHz controller clock.
func ldoDesignFor(d Domain, headroomV float64) (*ldo.Design, error) {
	iMax := d.TDP() / d.VNominal
	return ldo.New(ldo.Config{
		Node:  tech.MustLookup("45nm"),
		VIn:   d.VNominal + headroomV,
		VOut:  d.VNominal,
		GPass: 2 * iMax / headroomV,
		//lint:ignore unitflow the 80e-9 coefficient carries F/A (output capacitance per ampere of load)
		COut:       80e-9 * iMax,
		FSample:    250e6,
		Interleave: 4,
	})
}

// boardVRMEfficiency evaluates the off-chip VRM (a surface-mount buck at
// low frequency, the same commensurate model experiments/fig13 uses)
// producing vOut at power pOut from the board rail vIn, including trace
// resistance and controller quiescent power.
func boardVRMEfficiency(vIn, vOut, pOut float64) (float64, error) {
	iLoad := pOut / vOut
	cfg := buck.Config{
		Node:       tech.MustLookup("130nm"), // board-class silicon
		Inductor:   tech.SurfaceMount,
		OutCap:     tech.MIMCap,
		VIn:        vIn,
		VOut:       vOut,
		L:          300e-9,
		COut:       20e-6,
		FSw:        2e6,
		GHigh:      50,
		GLow:       80,
		Interleave: 4,
	}
	d, err := buck.New(cfg)
	if err != nil {
		return 0, err
	}
	d, err = d.OptimizeConductances(iLoad)
	if err != nil {
		return 0, err
	}
	m, err := d.Evaluate(iLoad)
	if err != nil {
		return 0, err
	}
	rTrace := 1.2e-3
	pTrace := iLoad * iLoad * rTrace
	pCtl := 0.25
	loss := m.Loss.Total() + pTrace + pCtl
	return m.POut / (m.POut + loss), nil
}

// DefaultFloorplan is a five-domain heterogeneous SoC (~43 W): big and
// little CPU clusters, a phase-scheduled GPU, a memory controller, and an
// NPU-style accelerator, on the case-study off-chip network. It is the
// floorplan /v1/hybrid and the hybrid experiment run when none is given.
func DefaultFloorplan() (*Floorplan, error) {
	net, err := pdn.TypicalOffChip(60e-9, 1.2e-3)
	if err != nil {
		return nil, err
	}
	cfd, err := workload.Get("CFD")
	if err != nil {
		return nil, err
	}
	bfs, err := workload.Get("BFS2")
	if err != nil {
		return nil, err
	}
	mgst, err := workload.Get("MGST")
	if err != nil {
		return nil, err
	}
	hotsp, err := workload.Get("HOTSP")
	if err != nil {
		return nil, err
	}
	// The GPU alternates compute-heavy kernels with memory-bound lulls —
	// the phase boundaries are where hybrid reassignment earns its keep.
	gpuPhases := workload.PhaseSchedule{
		Name: "gpu-phases",
		Phases: []workload.Phase{
			{Benchmark: "KMN", Duration: 4e-6},
			{Benchmark: "CFD", Duration: 3e-6, Scale: 1.1},
			{Benchmark: "BACKP", Duration: 3e-6, Scale: 0.6},
		},
	}
	fl := &Floorplan{
		Name:    "soc-default",
		VSource: 3.3,
		Network: net,
		Seed:    20170618,
		Domains: []Domain{
			{Name: "cpu-big", Cores: 4, TDPPerCore: 4.5, VNominal: 0.9,
				GridR: 3.5e-3, GridL: 50e-12, Workload: cfd},
			{Name: "cpu-little", Cores: 4, TDPPerCore: 1.5, VNominal: 0.8,
				GridR: 4.5e-3, GridL: 60e-12, Workload: bfs},
			{Name: "gpu", Cores: 4, TDPPerCore: 5, VNominal: 0.85,
				GridR: 3.5e-3, GridL: 50e-12, Workload: gpuPhases},
			{Name: "memc", Cores: 2, TDPPerCore: 2, VNominal: 0.85,
				GridR: 5e-3, GridL: 70e-12, Workload: mgst},
			{Name: "npu", Cores: 1, TDPPerCore: 4, VNominal: 0.85,
				GridR: 6e-3, GridL: 80e-12, Workload: hotsp},
		},
	}
	if err := fl.Validate(); err != nil {
		return nil, err
	}
	return fl, nil
}
