package soc

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"ivory/internal/pdn"
	"ivory/internal/pds"
	"ivory/internal/workload"
)

// paperDomain mirrors the pds package's 4-SM test system (the paper's case
// study shape) as a one-domain floorplan, with every default overridden so
// the composition contract — not a coincidence of defaults — is what the
// equivalence test exercises.
func paperFloorplan(t *testing.T) *Floorplan {
	t.Helper()
	net, err := pdn.TypicalOffChip(100e-9, 1.2e-3)
	if err != nil {
		t.Fatal(err)
	}
	cfd, err := workload.Get("CFD")
	if err != nil {
		t.Fatal(err)
	}
	fl := &Floorplan{
		Name:    "paper-4sm",
		VSource: 3.3,
		Network: net,
		Seed:    999, // must be ignored: the domain overrides its seed
		Domains: []Domain{{
			Name:       "sm",
			Cores:      4,
			TDPPerCore: 5,
			VNominal:   0.85,
			GridR:      2.5e-3,
			GridL:      25e-12,
			Load:       workload.LoadModel{PNominal: 5, VNominal: 0.85, LeakFraction: 0.25},
			Workload:   cfd,
			Seed:       12345,
		}},
	}
	if err := fl.Validate(); err != nil {
		t.Fatal(err)
	}
	return fl
}

// paperSystem is the same configuration built directly as a pds.System.
func paperSystem(t *testing.T) *pds.System {
	t.Helper()
	net, err := pdn.TypicalOffChip(100e-9, 1.2e-3)
	if err != nil {
		t.Fatal(err)
	}
	return &pds.System{
		Cores:      4,
		TDPPerCore: 5,
		VNominal:   0.85,
		VSource:    3.3,
		Load:       workload.LoadModel{PNominal: 5, VNominal: 0.85, LeakFraction: 0.25},
		GridR:      2.5e-3,
		GridL:      25e-12,
		Network:    net,
		Seed:       12345,
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestOneDomainEquivalence pins the composition contract: a one-domain
// floorplan shaped like the paper's 4-SM system must reproduce the direct
// pds simulation byte-for-byte — same traces, same solver path, same
// NoiseResult summary — for the off-chip VRM and 1/2/4 IVR configurations.
func TestOneDomainEquivalence(t *testing.T) {
	fl := paperFloorplan(t)
	sys := paperSystem(t)
	cfd, err := workload.Get("CFD")
	if err != nil {
		t.Fatal(err)
	}
	const T, dt = 10e-6, 5e-9
	ctx := context.Background()

	res, err := Sweep(SweepSpec{
		Floorplan: fl,
		Rails: []Rail{
			{Kind: OffChipVRM},
			{Kind: CentralizedIVR},
			{Kind: DistributedIVR, N: 2},
			{Kind: DistributedIVR, N: 4},
		},
		T: T, Dt: dt,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 4 {
		t.Fatalf("got %d cells, want 4", len(res.Cells))
	}

	// The sweep's auto design for a 20 W / 0.85 V domain is exactly the
	// case-study chip-level converter.
	des, err := AutoIVRDesign(20, 0.85)
	if err != nil {
		t.Fatal(err)
	}
	direct := make([]*pds.NoiseResult, 4)
	if direct[0], err = sys.SimulateOffChipVRMContext(ctx, cfd, T, dt, pds.SimOptions{}); err != nil {
		t.Fatal(err)
	}
	for i, n := range []int{1, 2, 4} {
		if direct[i+1], err = sys.SimulateIVRContext(ctx, des, n, cfd, T, dt, pds.SimOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	for i, nr := range direct {
		cell := res.Cells[i]
		if cell.Infeasible != "" {
			t.Fatalf("cell %s unexpectedly infeasible: %s", cell.Rail, cell.Infeasible)
		}
		got := mustJSON(t, struct {
			S   any
			Vpp float64
			WD  float64
		}{cell.VStats, cell.NoiseVpp, cell.WorstDroop})
		want := mustJSON(t, struct {
			S   any
			Vpp float64
			WD  float64
		}{nr.VStats, nr.NoiseVpp, nr.WorstDroop})
		if !bytes.Equal(got, want) {
			t.Errorf("cell %s diverges from direct pds path:\n got %s\nwant %s", cell.Rail, got, want)
		}
	}
}

// TestSweepExplicitDesignEquivalence repeats the IVR cell with an explicit
// chip-level design: a one-domain floorplan takes a TDP fraction of exactly
// 1.0, and scaling by 1.0 must rebuild the identical converter.
func TestSweepExplicitDesignEquivalence(t *testing.T) {
	fl := paperFloorplan(t)
	sys := paperSystem(t)
	cfd, err := workload.Get("CFD")
	if err != nil {
		t.Fatal(err)
	}
	des, err := AutoIVRDesign(20, 0.85)
	if err != nil {
		t.Fatal(err)
	}
	const T, dt = 10e-6, 5e-9
	res, err := Sweep(SweepSpec{
		Floorplan: fl,
		Rails:     []Rail{{Kind: CentralizedIVR}},
		IVRDesign: des,
		T:         T, Dt: dt,
	})
	if err != nil {
		t.Fatal(err)
	}
	nr, err := sys.SimulateIVRContext(context.Background(), des, 1, cfd, T, dt, pds.SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := mustJSON(t, res.Cells[0].VStats), mustJSON(t, nr.VStats); !bytes.Equal(got, want) {
		t.Errorf("explicit-design cell diverges:\n got %s\nwant %s", got, want)
	}
}

// smallFloorplan is a three-domain floorplan cheap enough to sweep
// repeatedly in the determinism tests.
func smallFloorplan(t *testing.T) *Floorplan {
	t.Helper()
	fl, err := DefaultFloorplan()
	if err != nil {
		t.Fatal(err)
	}
	fl.Domains = fl.Domains[:3] // cpu-big, cpu-little, gpu (phase-scheduled)
	return fl
}

// comparable strips the timing fields (wall clock, rate) that legitimately
// vary run to run; everything else must be bit-identical.
func comparable(t *testing.T, res *SweepResult) []byte {
	t.Helper()
	stats := res.Stats
	stats.Wall = 0
	stats.AssignmentsPerSec = 0
	return mustJSON(t, struct {
		Cells      []Cell
		Candidates []Candidate
		Stats      SweepStats
	}{res.Cells, res.Candidates, stats})
}

// TestSweepDeterminism pins the ranked output across worker counts and
// repeated runs: per-index cell slots plus serial canonical enumeration
// must make the result invariant.
func TestSweepDeterminism(t *testing.T) {
	fl := smallFloorplan(t)
	spec := SweepSpec{Floorplan: fl, T: 2e-6, Dt: 5e-9, AreaBudgetMM2: 40}
	var ref []byte
	for _, workers := range []int{1, 2, 8, 2} {
		spec.Workers = workers
		res, err := Sweep(spec)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got := comparable(t, res)
		if ref == nil {
			ref = got
			continue
		}
		if !bytes.Equal(got, ref) {
			t.Errorf("workers=%d output differs from workers=1 reference", workers)
		}
	}
}

func TestSweepStatsConsistency(t *testing.T) {
	fl := smallFloorplan(t)
	res, err := Sweep(SweepSpec{Floorplan: fl, T: 2e-6, Dt: 5e-9, AreaBudgetMM2: 12, Top: -1})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Stats
	if s.Cells != 15 || s.Assignments != 125 {
		t.Fatalf("grid bookkeeping off: %+v", s)
	}
	if got := s.Ranked + s.RejectedInfeasible + s.RejectedArea; got != s.Assignments {
		t.Errorf("ranked %d + rejected %d+%d != assignments %d",
			s.Ranked, s.RejectedInfeasible, s.RejectedArea, s.Assignments)
	}
	if len(res.Candidates) != s.Ranked {
		t.Errorf("Top: -1 must retain all %d ranked candidates, got %d", s.Ranked, len(res.Candidates))
	}
	budgetM2 := res.AreaBudgetMM2 * 1e-6
	for i, c := range res.Candidates {
		if c.AreaM2 > budgetM2 {
			t.Errorf("candidate %d (%s) exceeds the area budget: %g m²", i, c.Key, c.AreaM2)
		}
		if i > 0 && res.Candidates[i-1].Efficiency < c.Efficiency {
			t.Errorf("ranking not descending at %d", i)
		}
	}
	if best := res.Best(); best == nil || best.Key != res.Candidates[0].Key {
		t.Error("Best must return the top-ranked candidate")
	}
}

func TestSweepTopRetention(t *testing.T) {
	fl := smallFloorplan(t)
	all, err := Sweep(SweepSpec{Floorplan: fl, T: 2e-6, Dt: 5e-9, Top: -1})
	if err != nil {
		t.Fatal(err)
	}
	top3, err := Sweep(SweepSpec{Floorplan: fl, T: 2e-6, Dt: 5e-9, Top: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(top3.Candidates) != 3 {
		t.Fatalf("got %d candidates, want 3", len(top3.Candidates))
	}
	for i := range top3.Candidates {
		if top3.Candidates[i].Key != all.Candidates[i].Key {
			t.Errorf("top-3 entry %d is %s, full ranking has %s", i, top3.Candidates[i].Key, all.Candidates[i].Key)
		}
	}
}

func TestSweepCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Sweep(SweepSpec{Context: ctx, T: 2e-6, Dt: 5e-9}); err == nil {
		t.Fatal("cancelled sweep must fail")
	}
}

func TestSweepRejectsBadSpecs(t *testing.T) {
	fl := smallFloorplan(t)
	cases := []SweepSpec{
		{Floorplan: fl, T: 1e-8, Dt: 5e-9},                       // too few samples
		{Floorplan: fl, AreaBudgetMM2: -1},                       // negative budget
		{Floorplan: fl, LDOHeadroomV: -0.1},                      // negative headroom
		{Floorplan: fl, Rails: []Rail{{Kind: RailKind(9)}}},      // unknown rail
		{Floorplan: fl, Rails: []Rail{{Kind: OffChipVRM, N: 2}}}, // instance count on a singleton rail
	}
	for i, spec := range cases {
		if _, err := Sweep(spec); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
	bad := *fl
	bad.Domains = append([]Domain{}, fl.Domains...)
	bad.Domains[1].Name = bad.Domains[0].Name
	if _, err := Sweep(SweepSpec{Floorplan: &bad}); err == nil {
		t.Error("duplicate domain names must fail")
	}
}

func TestParseRail(t *testing.T) {
	good := map[string]Rail{
		"vrm":      {Kind: OffChipVRM},
		"off-chip": {Kind: OffChipVRM},
		"IVR":      {Kind: CentralizedIVR},
		"ivr1":     {Kind: CentralizedIVR},
		" ivr4 ":   {Kind: DistributedIVR, N: 4},
		"ldo":      {Kind: DigitalLDO},
	}
	for tok, want := range good {
		got, err := ParseRail(tok)
		if err != nil || got != want {
			t.Errorf("ParseRail(%q) = %v, %v; want %v", tok, got, err, want)
		}
	}
	for _, tok := range []string{"", "buck", "ivr0", "ivr-3", "ivrx"} {
		if _, err := ParseRail(tok); err == nil {
			t.Errorf("ParseRail(%q) must fail", tok)
		}
	}
	// Round trip through String.
	for _, r := range DefaultRails() {
		got, err := ParseRail(r.String())
		if err != nil || got != r {
			t.Errorf("round trip %v -> %q -> %v, %v", r, r.String(), got, err)
		}
	}
}

func TestNormalizeRails(t *testing.T) {
	in := []Rail{
		{Kind: DigitalLDO},
		{Kind: DistributedIVR, N: 4},
		{Kind: OffChipVRM},
		{Kind: DistributedIVR, N: 2},
		{Kind: OffChipVRM}, // duplicate
	}
	out, err := NormalizeRails(in)
	if err != nil {
		t.Fatal(err)
	}
	want := []Rail{
		{Kind: OffChipVRM},
		{Kind: DistributedIVR, N: 2},
		{Kind: DistributedIVR, N: 4},
		{Kind: DigitalLDO},
	}
	if len(out) != len(want) {
		t.Fatalf("got %v, want %v", out, want)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("got %v, want %v", out, want)
		}
	}
	def, err := NormalizeRails(nil)
	if err != nil || len(def) != len(DefaultRails()) {
		t.Fatalf("empty menu must yield the default: %v, %v", def, err)
	}
}

func TestDomainSeedDerivation(t *testing.T) {
	fl := paperFloorplan(t)
	fl.Domains[0].Seed = 0
	s1 := fl.system(fl.Domains[0])
	if s1.Seed == 999 || s1.Seed == 0 {
		t.Errorf("derived seed must mix the domain name, got %d", s1.Seed)
	}
	d2 := fl.Domains[0]
	d2.Name = "other"
	if s2 := fl.system(d2); s2.Seed == s1.Seed {
		t.Error("sibling domains must get distinct derived seeds")
	}
}
