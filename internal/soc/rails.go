package soc

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// RailKind classifies how a domain's rail is regulated.
type RailKind int

const (
	// OffChipVRM leaves the domain on the board regulator: conversion at
	// the board, the PDN carrying the domain current at core voltage.
	OffChipVRM RailKind = iota
	// CentralizedIVR gives the domain one on-chip SC converter.
	CentralizedIVR
	// DistributedIVR splits the domain's converter across Rail.N
	// instances, shrinking the residual grid impedance per block.
	DistributedIVR
	// DigitalLDO regulates the domain with a centralized digital LDO from
	// a board-supplied headroom rail.
	DigitalLDO
)

// Rail is one delivery style a domain can be assigned.
type Rail struct {
	Kind RailKind
	// N is the instance count for DistributedIVR (>= 2); zero otherwise.
	N int
}

// Validate checks the rail.
func (r Rail) Validate() error {
	switch r.Kind {
	case OffChipVRM, CentralizedIVR, DigitalLDO:
		if r.N != 0 {
			return fmt.Errorf("soc: rail %v takes no instance count (got %d)", r.Kind, r.N)
		}
		return nil
	case DistributedIVR:
		if r.N < 2 {
			return fmt.Errorf("soc: distributed IVR rail needs N >= 2 (got %d)", r.N)
		}
		return nil
	default:
		return fmt.Errorf("soc: unknown rail kind %d", int(r.Kind))
	}
}

// String renders the compact wire/CLI token: "vrm", "ivr", "ivrN", "ldo".
func (r Rail) String() string {
	switch r.Kind {
	case OffChipVRM:
		return "vrm"
	case CentralizedIVR:
		return "ivr"
	case DistributedIVR:
		return "ivr" + strconv.Itoa(r.N)
	case DigitalLDO:
		return "ldo"
	}
	return fmt.Sprintf("rail(%d)", int(r.Kind))
}

// Label renders the descriptive form matching pds result Config names.
func (r Rail) Label() string {
	switch r.Kind {
	case OffChipVRM:
		return "off-chip VRM"
	case CentralizedIVR:
		return "centralized IVR"
	case DistributedIVR:
		return fmt.Sprintf("%d distributed IVRs", r.N)
	case DigitalLDO:
		return "digital LDO"
	}
	return r.String()
}

// ParseRail parses the compact token form String emits.
func ParseRail(s string) (Rail, error) {
	switch t := strings.ToLower(strings.TrimSpace(s)); {
	case t == "vrm" || t == "off-chip" || t == "offchip":
		return Rail{Kind: OffChipVRM}, nil
	case t == "ivr" || t == "ivr1":
		return Rail{Kind: CentralizedIVR}, nil
	case t == "ldo":
		return Rail{Kind: DigitalLDO}, nil
	case strings.HasPrefix(t, "ivr"):
		n, err := strconv.Atoi(t[len("ivr"):])
		if err != nil || n < 2 {
			return Rail{}, fmt.Errorf("soc: bad rail token %q (want vrm|ivr|ivrN|ldo)", s)
		}
		return Rail{Kind: DistributedIVR, N: n}, nil
	default:
		return Rail{}, fmt.Errorf("soc: bad rail token %q (want vrm|ivr|ivrN|ldo)", s)
	}
}

// DefaultRails is the menu a sweep offers each domain when SweepSpec.Rails
// is empty: off-chip VRM, centralized IVR, 2- and 4-way distributed IVRs,
// and a digital LDO. Distribution counts that do not divide a domain's
// core count are infeasible for that domain and assignments using them are
// rejected, not errored.
func DefaultRails() []Rail {
	return []Rail{
		{Kind: OffChipVRM},
		{Kind: CentralizedIVR},
		{Kind: DistributedIVR, N: 2},
		{Kind: DistributedIVR, N: 4},
		{Kind: DigitalLDO},
	}
}

// railLess is the canonical rail order: OffChipVRM < CentralizedIVR <
// DistributedIVR (ascending N) < DigitalLDO. Assignment enumeration and
// candidate keys follow it, so ranked output is independent of the order a
// caller listed the rails in.
func railLess(a, b Rail) bool {
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	return a.N < b.N
}

// NormalizeRails validates, canonically sorts, and dedupes a rail menu;
// an empty menu yields DefaultRails. Sweep applies it to SweepSpec.Rails,
// and the serving layer uses it to give semantically identical menus one
// cache key.
func NormalizeRails(rails []Rail) ([]Rail, error) {
	if len(rails) == 0 {
		rails = DefaultRails()
	}
	out := make([]Rail, 0, len(rails))
	for _, r := range rails {
		if err := r.Validate(); err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return railLess(out[i], out[j]) })
	dedup := out[:0]
	for i, r := range out {
		if i == 0 || r != out[i-1] {
			dedup = append(dedup, r)
		}
	}
	return dedup, nil
}
