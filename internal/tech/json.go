package tech

import (
	"encoding/json"
	"fmt"
	"io"

	"ivory/internal/numeric"
)

// The JSON schema uses human-readable keys so that user-supplied node
// files are self-documenting. All quantities are SI (see the field docs on
// the in-memory types).

type jsonSwitch struct {
	ROnWidth       float64 `json:"r_on_width_ohm_m"`
	CGatePerWidth  float64 `json:"c_gate_per_width_f_per_m"`
	CDrainPerWidth float64 `json:"c_drain_per_width_f_per_m"`
	LeakPerWidth   float64 `json:"leak_per_width_a_per_m"`
	VMax           float64 `json:"v_max"`
	VDrive         float64 `json:"v_drive"`
	AreaPerWidth   float64 `json:"area_per_width_m"`
}

type jsonCap struct {
	DensityFPerM2    float64 `json:"density_f_per_m2"`
	BottomPlateRatio float64 `json:"bottom_plate_ratio"`
	LeakPerFarad     float64 `json:"leak_a_per_f"`
	ESROhmFarad      float64 `json:"esr_ohm_farad"`
	VMax             float64 `json:"v_max"`
}

type jsonInd struct {
	DensityHPerM2 float64   `json:"density_h_per_m2"`
	FixedAreaM2   float64   `json:"fixed_area_m2"`
	DCRPerHenry   float64   `json:"dcr_per_henry"`
	LFreqCoeff    []float64 `json:"l_freq_coeff_per_ghz"`
	FSkin         float64   `json:"f_skin_hz"`
	IMax          float64   `json:"i_max_a"`
}

type jsonNode struct {
	Name                string                `json:"name"`
	FeatureM            float64               `json:"feature_m"`
	VddNominal          float64               `json:"vdd_nominal"`
	GridSheetOhm        float64               `json:"grid_sheet_ohm"`
	LogicEnergyPerGateJ float64               `json:"logic_energy_per_gate_j"`
	Switches            map[string]jsonSwitch `json:"switches"`
	Capacitors          map[string]jsonCap    `json:"capacitors"`
	Inductors           map[string]jsonInd    `json:"inductors"`
}

var switchClassNames = map[string]DeviceClass{
	"core": CoreDevice,
	"io":   IODevice,
}

var capKindNames = map[string]CapacitorKind{
	"mos":         MOSCap,
	"mim":         MIMCap,
	"deep-trench": DeepTrench,
}

var indKindNames = map[string]InductorKind{
	"surface-mount":        SurfaceMount,
	"integrated-thin-film": IntegratedThinFilm,
}

// WriteJSON serializes the node as indented JSON — a ready-made template
// for user-defined technology nodes.
func (n *Node) WriteJSON(w io.Writer) error {
	jn := jsonNode{
		Name:                n.Name,
		FeatureM:            n.FeatureM,
		VddNominal:          n.VddNominal,
		GridSheetOhm:        n.GridSheetOhm,
		LogicEnergyPerGateJ: n.LogicEnergyPerGateJ,
		Switches:            map[string]jsonSwitch{},
		Capacitors:          map[string]jsonCap{},
		Inductors:           map[string]jsonInd{},
	}
	for name, class := range switchClassNames {
		if s, ok := n.Switches[class]; ok {
			jn.Switches[name] = jsonSwitch{
				ROnWidth: s.ROnWidth, CGatePerWidth: s.CGatePerWidth,
				CDrainPerWidth: s.CDrainPerWidth, LeakPerWidth: s.LeakPerWidth,
				VMax: s.VMax, VDrive: s.VDrive, AreaPerWidth: s.AreaPerWidth,
			}
		}
	}
	for name, kind := range capKindNames {
		if c, ok := n.Capacitors[kind]; ok {
			jn.Capacitors[name] = jsonCap{
				DensityFPerM2: c.DensityFPerM2, BottomPlateRatio: c.BottomPlateRatio,
				LeakPerFarad: c.LeakPerFarad, ESROhmFarad: c.ESROhmFarad, VMax: c.VMax,
			}
		}
	}
	for name, kind := range indKindNames {
		if l, ok := n.Inductors[kind]; ok {
			jn.Inductors[name] = jsonInd{
				DensityHPerM2: l.DensityHPerM2, FixedAreaM2: l.FixedAreaM2, DCRPerHenry: l.DCRPerHenry,
				LFreqCoeff: l.LFreqCoeff, FSkin: l.FSkin, IMax: l.IMax,
			}
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jn)
}

// LoadJSON parses a node definition. The node is validated (name, at least
// one switch) but NOT registered; call AddNode to make it visible to
// Lookup.
func LoadJSON(r io.Reader) (*Node, error) {
	var jn jsonNode
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&jn); err != nil {
		return nil, fmt.Errorf("tech: parsing node JSON: %w", err)
	}
	if jn.Name == "" {
		return nil, fmt.Errorf("tech: node JSON needs a name")
	}
	if jn.FeatureM <= 0 || jn.VddNominal <= 0 {
		return nil, fmt.Errorf("tech: node %q needs positive feature_m and vdd_nominal", jn.Name)
	}
	n := &Node{
		Name:                jn.Name,
		FeatureM:            jn.FeatureM,
		VddNominal:          jn.VddNominal,
		GridSheetOhm:        jn.GridSheetOhm,
		LogicEnergyPerGateJ: jn.LogicEnergyPerGateJ,
		Switches:            map[DeviceClass]SwitchDevice{},
		Capacitors:          map[CapacitorKind]CapacitorOption{},
		Inductors:           map[InductorKind]InductorOption{},
	}
	for name, js := range jn.Switches {
		class, ok := switchClassNames[name]
		if !ok {
			return nil, fmt.Errorf("tech: unknown switch class %q (use core/io)", name)
		}
		if js.ROnWidth <= 0 || js.VMax <= 0 {
			return nil, fmt.Errorf("tech: switch %q needs positive r_on_width and v_max", name)
		}
		vdr := js.VDrive
		if vdr == 0 {
			vdr = js.VMax
		}
		n.Switches[class] = SwitchDevice{
			Class: class, ROnWidth: js.ROnWidth, CGatePerWidth: js.CGatePerWidth,
			CDrainPerWidth: js.CDrainPerWidth, LeakPerWidth: js.LeakPerWidth,
			VMax: js.VMax, VDrive: vdr, AreaPerWidth: js.AreaPerWidth,
		}
	}
	if len(n.Switches) == 0 {
		return nil, fmt.Errorf("tech: node %q defines no switches", jn.Name)
	}
	for name, jc := range jn.Capacitors {
		kind, ok := capKindNames[name]
		if !ok {
			return nil, fmt.Errorf("tech: unknown capacitor kind %q (use mos/mim/deep-trench)", name)
		}
		if jc.DensityFPerM2 <= 0 {
			return nil, fmt.Errorf("tech: capacitor %q needs positive density", name)
		}
		n.Capacitors[kind] = CapacitorOption{
			Kind: kind, DensityFPerM2: jc.DensityFPerM2, BottomPlateRatio: jc.BottomPlateRatio,
			LeakPerFarad: jc.LeakPerFarad, ESROhmFarad: jc.ESROhmFarad, VMax: jc.VMax,
		}
	}
	for name, jl := range jn.Inductors {
		kind, ok := indKindNames[name]
		if !ok {
			return nil, fmt.Errorf("tech: unknown inductor kind %q (use surface-mount/integrated-thin-film)", name)
		}
		n.Inductors[kind] = InductorOption{
			Kind: kind, DensityHPerM2: jl.DensityHPerM2, FixedAreaM2: jl.FixedAreaM2,
			DCRPerHenry: jl.DCRPerHenry, LFreqCoeff: numeric.Polynomial(jl.LFreqCoeff),
			FSkin: jl.FSkin, IMax: jl.IMax,
		}
	}
	return n, nil
}
