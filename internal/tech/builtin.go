package tech

import "ivory/internal/numeric"

// nodeSpec is the compact row format the built-in table is written in.
// Unit conventions for the table (converted to SI in build()):
//
//	ron      on-resistance*width, ohm*um
//	cg       gate cap per width, fF/um
//	cd       drain cap per width, fF/um
//	leak     off leakage per width, nA/um
//	mosCap    MOS cap density, nF/mm^2
//	trenchCap deep-trench density, nF/mm^2 (0 = unavailable)
//	mimCap    MIM density, nF/mm^2
//	ind      integrated inductor density, nH/mm^2
type nodeSpec struct {
	name    string
	feature float64 // nm
	vdd     float64 // V
	ron     float64
	cg      float64
	cd      float64
	leak    float64
	mosCap  float64
	trench  float64
	mim     float64
	ind     float64
	grid    float64 // ohm/sq on-chip grid
	eGate   float64 // fJ per gate transition
}

// builtinSpecs spans 130 nm down to 10 nm, following ITRS/PTM scaling
// trends: conductance and capacitor density improve with scaling, leakage
// per width worsens, nominal Vdd drops.
var builtinSpecs = []nodeSpec{
	{"130nm", 130, 1.20, 2400, 1.15, 0.95, 0.05, 5.5, 0, 1.4, 2.0, 0.045, 4.0},
	{"90nm", 90, 1.10, 1900, 1.10, 0.90, 0.20, 6.5, 100, 1.6, 3.0, 0.040, 2.6},
	{"65nm", 65, 1.00, 1500, 1.05, 0.80, 0.80, 7.5, 150, 1.8, 4.0, 0.036, 1.7},
	{"45nm", 45, 1.00, 1150, 1.00, 0.72, 2.50, 9.0, 200, 2.0, 5.5, 0.033, 1.1},
	{"32nm", 32, 0.90, 930, 0.95, 0.66, 5.00, 10.5, 250, 2.2, 7.0, 0.030, 0.70},
	{"22nm", 22, 0.85, 760, 0.90, 0.60, 8.50, 12.0, 300, 2.5, 9.0, 0.027, 0.45},
	{"14nm", 14, 0.80, 620, 0.85, 0.55, 13.0, 14.0, 350, 2.8, 11.0, 0.025, 0.28},
	{"10nm", 10, 0.75, 520, 0.80, 0.50, 18.0, 16.0, 400, 3.0, 13.0, 0.023, 0.18},
}

const (
	ohmUm   = 1e-6  // ohm*um -> ohm*m
	fFPerUm = 1e-9  // fF/um  -> F/m
	nAPerUm = 1e-3  // nA/um  -> A/m
	nFmm2   = 1e-3  // nF/mm^2 -> F/m^2
	nHmm2   = 1e-3  // nH/mm^2 -> H/m^2
	fJ      = 1e-15 // fJ -> J
)

func (s nodeSpec) build() *Node {
	core := SwitchDevice{
		Class:          CoreDevice,
		ROnWidth:       s.ron * ohmUm,
		CGatePerWidth:  s.cg * fFPerUm,
		CDrainPerWidth: s.cd * fFPerUm,
		LeakPerWidth:   s.leak * nAPerUm,
		VMax:           s.vdd * 1.15,
		VDrive:         s.vdd,
		AreaPerWidth:   20 * s.feature * 1e-9, // device + guard + routing pitch
	}
	// Thick-oxide I/O device: blocks 3.3 V directly, at ~2.6x worse Ron*W
	// and larger layout pitch — the standard trade-off for board-voltage
	// front-end switches.
	io := SwitchDevice{
		Class:          IODevice,
		ROnWidth:       s.ron * 2.6 * ohmUm,
		CGatePerWidth:  s.cg * 1.35 * fFPerUm,
		CDrainPerWidth: s.cd * 1.4 * fFPerUm,
		LeakPerWidth:   s.leak * 0.02 * nAPerUm,
		VMax:           3.3,
		VDrive:         2.5, // driven from the 2.5 V I/O rail
		AreaPerWidth:   34 * s.feature * 1e-9,
	}
	caps := map[CapacitorKind]CapacitorOption{
		MOSCap: {
			Kind:             MOSCap,
			DensityFPerM2:    s.mosCap * nFmm2,
			BottomPlateRatio: 0.05,
			LeakPerFarad:     30e-3 * (s.leak / 2.5), // scales with node leakiness
			ESROhmFarad:      0.4e-12,                // 0.4 ohm for 1 pF, scaling 1/C
			VMax:             s.vdd * 1.15,
		},
		MIMCap: {
			Kind:             MIMCap,
			DensityFPerM2:    s.mim * nFmm2,
			BottomPlateRatio: 0.01,
			LeakPerFarad:     1e-6,
			ESROhmFarad:      0.2e-12,
			VMax:             3.3,
		},
	}
	if s.trench > 0 {
		caps[DeepTrench] = CapacitorOption{
			Kind:             DeepTrench,
			DensityFPerM2:    s.trench * nFmm2,
			BottomPlateRatio: 0.006,
			LeakPerFarad:     0.5e-3,
			ESROhmFarad:      0.8e-12,
			VMax:             1.8,
		}
	}
	inductors := map[InductorKind]InductorOption{
		SurfaceMount: {
			Kind:        SurfaceMount,
			FixedAreaM2: 9e-6, // 3x3 mm board footprint per part
			DCRPerHenry: 1e4,  // 10 mohm per uH class
			// Discrete ferrite parts hold inductance well below ~10 MHz and
			// roll off beyond; coefficient vs f in GHz.
			LFreqCoeff: numeric.Polynomial{1.0, -8.0, 12.0},
			FSkin:      5e6,
			IMax:       30,
		},
		IntegratedThinFilm: {
			Kind:          IntegratedThinFilm,
			DensityHPerM2: s.ind * nHmm2,
			DCRPerHenry:   5e7, // 50 mohm per nH class
			// Magnetic thin-film inductors lose permeability with frequency;
			// polynomial fit of published L(f) curves (f in GHz).
			LFreqCoeff: numeric.Polynomial{1.0, -0.28, 0.03},
			FSkin:      800e6,
			IMax:       2.5,
		},
	}
	return &Node{
		Name:                s.name,
		FeatureM:            s.feature * 1e-9,
		VddNominal:          s.vdd,
		Switches:            map[DeviceClass]SwitchDevice{CoreDevice: core, IODevice: io},
		Capacitors:          caps,
		Inductors:           inductors,
		GridSheetOhm:        s.grid,
		LogicEnergyPerGateJ: s.eGate * fJ,
	}
}

func init() {
	for _, s := range builtinSpecs {
		if err := AddNode(s.build()); err != nil {
			panic(err)
		}
	}
}
