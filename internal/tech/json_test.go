package tech

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"ivory/internal/numeric"
)

func TestJSONRoundTrip(t *testing.T) {
	orig := MustLookup("45nm")
	var buf bytes.Buffer
	if err := orig.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Name != orig.Name || !numeric.ApproxEqual(loaded.VddNominal, orig.VddNominal, 0) {
		t.Errorf("basic fields lost: %+v", loaded)
	}
	for class, s := range orig.Switches {
		ls, ok := loaded.Switches[class]
		if !ok {
			t.Fatalf("switch class %v lost", class)
		}
		if !numeric.ApproxEqual(ls.ROnWidth, s.ROnWidth, 0) || !numeric.ApproxEqual(ls.VMax, s.VMax, 0) || !numeric.ApproxEqual(ls.VDrive, s.VDrive, 0) {
			t.Errorf("switch %v fields differ: %+v vs %+v", class, ls, s)
		}
	}
	for kind, c := range orig.Capacitors {
		lc, ok := loaded.Capacitors[kind]
		if !ok {
			t.Fatalf("capacitor %v lost", kind)
		}
		if math.Abs(lc.DensityFPerM2-c.DensityFPerM2) > 1e-18 {
			t.Errorf("capacitor %v density differs", kind)
		}
	}
	for kind, l := range orig.Inductors {
		ll, ok := loaded.Inductors[kind]
		if !ok {
			t.Fatalf("inductor %v lost", kind)
		}
		if len(ll.LFreqCoeff) != len(l.LFreqCoeff) {
			t.Errorf("inductor %v polynomial lost", kind)
		}
	}
}

func TestLoadJSONMinimal(t *testing.T) {
	deck := `{
  "name": "custom-65",
  "feature_m": 65e-9,
  "vdd_nominal": 1.0,
  "switches": {
    "core": {"r_on_width_ohm_m": 1.5e-3, "c_gate_per_width_f_per_m": 1e-9, "v_max": 1.1}
  }
}`
	n, err := LoadJSON(strings.NewReader(deck))
	if err != nil {
		t.Fatal(err)
	}
	if n.Name != "custom-65" {
		t.Errorf("name %q", n.Name)
	}
	sw := n.Switches[CoreDevice]
	// VDrive defaults to VMax when omitted.
	if !numeric.ApproxEqual(sw.VDrive, 1.1, 0) {
		t.Errorf("VDrive default = %v", sw.VDrive)
	}
	// Not registered until AddNode.
	if _, err := Lookup("custom-65"); err == nil {
		t.Error("LoadJSON must not auto-register")
	}
	if err := AddNode(n); err != nil {
		t.Fatal(err)
	}
	if _, err := Lookup("custom-65"); err != nil {
		t.Error("registered node should resolve")
	}
}

func TestLoadJSONErrors(t *testing.T) {
	cases := []string{
		`not json`,
		`{}`,
		`{"name": "x"}`,
		`{"name": "x", "feature_m": 1e-9, "vdd_nominal": 1}`,                                                             // no switches
		`{"name": "x", "feature_m": 1e-9, "vdd_nominal": 1, "switches": {"weird": {"r_on_width_ohm_m": 1, "v_max": 1}}}`, // bad class
		`{"name": "x", "feature_m": 1e-9, "vdd_nominal": 1, "switches": {"core": {"r_on_width_ohm_m": 0, "v_max": 1}}}`,  // zero Ron
		`{"name": "x", "feature_m": 1e-9, "vdd_nominal": 1, "switches": {"core": {"r_on_width_ohm_m": 1, "v_max": 1}}, "capacitors": {"bogus": {"density_f_per_m2": 1}}}`,
		`{"name": "x", "feature_m": 1e-9, "vdd_nominal": 1, "switches": {"core": {"r_on_width_ohm_m": 1, "v_max": 1}}, "capacitors": {"mos": {"density_f_per_m2": 0}}}`,
		`{"name": "x", "feature_m": 1e-9, "vdd_nominal": 1, "switches": {"core": {"r_on_width_ohm_m": 1, "v_max": 1}}, "inductors": {"bogus": {}}}`,
		`{"name": "x", "feature_m": 1e-9, "vdd_nominal": 1, "unknown_field": 3, "switches": {"core": {"r_on_width_ohm_m": 1, "v_max": 1}}}`,
	}
	for i, deck := range cases {
		if _, err := LoadJSON(strings.NewReader(deck)); err == nil {
			t.Errorf("case %d should fail: %s", i, deck)
		}
	}
}
