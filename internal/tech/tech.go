// Package tech is Ivory's built-in technology database. It plays the role of
// the ITRS/PTM-derived device tables in the paper: for each CMOS node from
// 130 nm down to 10 nm it provides power-switch figures of merit, on-chip
// capacitor flavours, and inductor options (surface-mount and integrated
// thin-film), all of which parameterize the converter models.
//
// The absolute values are representative of published data (PTM device
// characterizations, embedded deep-trench capacitor papers, integrated
// magnetic-inductor surveys) and follow the accepted scaling trends:
// conductance per width improves and capacitor density grows at smaller
// nodes, while leakage per width worsens. They are deliberately editable —
// AddNode registers user-supplied nodes — since Ivory is an early-stage
// exploration tool, not a sign-off tool.
package tech

import (
	"fmt"
	"sort"
	"sync"

	"ivory/internal/numeric"
)

// DeviceClass selects between thin-oxide core devices and thick-oxide I/O
// devices for power switches. I/O devices block higher voltages at the cost
// of higher on-resistance and gate capacitance per width.
type DeviceClass int

const (
	// CoreDevice is the thin-oxide logic transistor of the node.
	CoreDevice DeviceClass = iota
	// IODevice is the thick-oxide transistor rated for board-level voltages.
	IODevice
)

func (d DeviceClass) String() string {
	switch d {
	case CoreDevice:
		return "core"
	case IODevice:
		return "io"
	default:
		return fmt.Sprintf("DeviceClass(%d)", int(d))
	}
}

// CapacitorKind selects an on-chip capacitor flavour.
type CapacitorKind int

const (
	// MOSCap is a thin-oxide MOS capacitor: dense but with a significant
	// bottom-plate parasitic and gate leakage.
	MOSCap CapacitorKind = iota
	// MIMCap is a metal-insulator-metal capacitor: low parasitics, low
	// density, available above the metal stack.
	MIMCap
	// DeepTrench is an embedded deep-trench capacitor: very high density,
	// small bottom-plate ratio; only available on select processes.
	DeepTrench
)

func (k CapacitorKind) String() string {
	switch k {
	case MOSCap:
		return "mos"
	case MIMCap:
		return "mim"
	case DeepTrench:
		return "deep-trench"
	default:
		return fmt.Sprintf("CapacitorKind(%d)", int(k))
	}
}

// InductorKind selects an inductor implementation for buck converters.
type InductorKind int

const (
	// SurfaceMount is a discrete board-level inductor (off-chip VRM class).
	SurfaceMount InductorKind = iota
	// IntegratedThinFilm is an on-die or interposer magnetic-core inductor.
	IntegratedThinFilm
)

func (k InductorKind) String() string {
	switch k {
	case SurfaceMount:
		return "surface-mount"
	case IntegratedThinFilm:
		return "integrated-thin-film"
	default:
		return fmt.Sprintf("InductorKind(%d)", int(k))
	}
}

// SwitchDevice describes a power-switch transistor option. All per-width
// quantities are normalized to meters of gate width.
type SwitchDevice struct {
	Class DeviceClass
	// ROnWidth is the on-resistance * width product (ohm·m).
	ROnWidth float64
	// CGatePerWidth is gate capacitance per width (F/m).
	CGatePerWidth float64
	// CDrainPerWidth is drain junction capacitance per width (F/m).
	CDrainPerWidth float64
	// LeakPerWidth is off-state leakage per width at VMax (A/m).
	LeakPerWidth float64
	// VMax is the maximum drain-source/gate-source voltage (V).
	VMax float64
	// VDrive is the gate-drive swing used by the drivers (V): the core
	// logic rail for core devices, the I/O rail for thick-oxide devices.
	VDrive float64
	// AreaPerWidth is layout area per width (m² per m of width), covering
	// the device, its guard ring, and local routing.
	AreaPerWidth float64
}

// ROn returns the on-resistance (ohm) of a switch of width w (m).
func (s SwitchDevice) ROn(w float64) float64 {
	if w <= 0 {
		return 0
	}
	return s.ROnWidth / w
}

// CGate returns the gate capacitance (F) of a switch of width w (m).
func (s SwitchDevice) CGate(w float64) float64 { return s.CGatePerWidth * w }

// CDrain returns the drain capacitance (F) of a switch of width w (m).
func (s SwitchDevice) CDrain(w float64) float64 { return s.CDrainPerWidth * w }

// Leakage returns the off-state leakage (A) of a switch of width w (m).
func (s SwitchDevice) Leakage(w float64) float64 { return s.LeakPerWidth * w }

// Area returns the layout area (m²) of a switch of width w (m).
func (s SwitchDevice) Area(w float64) float64 { return s.AreaPerWidth * w }

// WidthForROn returns the width (m) achieving on-resistance r (ohm).
func (s SwitchDevice) WidthForROn(r float64) float64 {
	if r <= 0 {
		return 0
	}
	return s.ROnWidth / r
}

// CapacitorOption describes an on-chip capacitor flavour.
type CapacitorOption struct {
	Kind CapacitorKind
	// DensityFPerM2 is capacitance per area (F/m²).
	DensityFPerM2 float64
	// BottomPlateRatio is the parasitic bottom-plate capacitance as a
	// fraction of the main capacitance (dimensionless).
	BottomPlateRatio float64
	// LeakPerFarad is leakage current per farad at nominal voltage (A/F).
	LeakPerFarad float64
	// ESRPerFarad models the distributed series resistance: ESR = ESRPerFarad/C...
	// ESR scales inversely with plate area, so ESR(C) = ESROhmFarad / C.
	ESROhmFarad float64
	// VMax is the voltage rating (V).
	VMax float64
}

// Area returns the die area (m²) required for capacitance c (F).
func (c CapacitorOption) Area(cap float64) float64 {
	if c.DensityFPerM2 <= 0 {
		return 0
	}
	return cap / c.DensityFPerM2
}

// ESR returns the effective series resistance (ohm) of a capacitor of value
// cap (F).
func (c CapacitorOption) ESR(cap float64) float64 {
	if cap <= 0 {
		return 0
	}
	return c.ESROhmFarad / cap
}

// InductorOption describes an inductor implementation.
type InductorOption struct {
	Kind InductorKind
	// DensityHPerM2 is inductance per area (H/m²). Zero for surface-mount parts,
	// whose area is board area tracked separately via FixedAreaM2.
	DensityHPerM2 float64
	// FixedAreaM2 is the board/package footprint (m²) for discrete parts.
	FixedAreaM2 float64
	// DCRPerHenry is series resistance per henry (ohm/H).
	DCRPerHenry float64
	// LFreqCoeff is the polynomial-fitted frequency-dependent inductance
	// coefficient: L_eff(f) = L0 * LFreqCoeff(f/1GHz). The paper models the
	// pronounced inductance roll-off of integrated inductors this way.
	LFreqCoeff numeric.Polynomial
	// ACResistanceExp scales resistance with frequency:
	// R_ac(f) = DCR * (1 + (f/FSkin)^ACResistanceExp) approximated linearly;
	// FSkin is the skin-effect corner (Hz).
	FSkin float64
	// IMax is the saturation-limited maximum current per instance (A).
	IMax float64
}

// LEff returns the effective inductance (H) of a nominal inductance l0 at
// switching frequency f (Hz).
func (l InductorOption) LEff(l0, f float64) float64 {
	if len(l.LFreqCoeff) == 0 {
		return l0
	}
	coeff := l.LFreqCoeff.Eval(f / 1e9)
	if coeff < 0.2 {
		coeff = 0.2 // fitted polynomials are not trusted past 80% roll-off
	}
	return l0 * coeff
}

// Resistance returns the series resistance (ohm) of inductance l0 at
// frequency f (Hz), including the skin-effect increase.
func (l InductorOption) Resistance(l0, f float64) float64 {
	dcr := l.DCRPerHenry * l0
	if l.FSkin > 0 && f > 0 {
		dcr *= 1 + f/l.FSkin*0.5
	}
	return dcr
}

// Area returns the die area (m²) of an integrated inductor of value l0 (H),
// or the fixed footprint for discrete parts.
func (l InductorOption) Area(l0 float64) float64 {
	if l.DensityHPerM2 > 0 {
		return l0 / l.DensityHPerM2
	}
	return l.FixedAreaM2
}

// Node is one technology-node entry of the database.
type Node struct {
	// Name is the lookup key, e.g. "45nm".
	Name string
	// FeatureM is the drawn feature size (m).
	FeatureM float64
	// VddNominal is the nominal core supply (V).
	VddNominal float64
	// Switches holds the available power-switch device classes.
	Switches map[DeviceClass]SwitchDevice
	// Capacitors holds the available capacitor flavours.
	Capacitors map[CapacitorKind]CapacitorOption
	// Inductors holds the available inductor implementations.
	Inductors map[InductorKind]InductorOption
	// GridSheetOhm is the on-chip power-grid sheet resistance (ohm/square).
	GridSheetOhm float64
	// LogicEnergyPerGateJ is switching energy per gate-width-unit, used to
	// size controller overhead (J per transition at VddNominal).
	LogicEnergyPerGateJ float64
}

// Switch returns the switch device of the given class.
func (n *Node) Switch(class DeviceClass) (SwitchDevice, error) {
	s, ok := n.Switches[class]
	if !ok {
		return SwitchDevice{}, fmt.Errorf("tech: node %s has no %v switch device", n.Name, class)
	}
	return s, nil
}

// Capacitor returns the capacitor option of the given kind.
func (n *Node) Capacitor(kind CapacitorKind) (CapacitorOption, error) {
	c, ok := n.Capacitors[kind]
	if !ok {
		return CapacitorOption{}, fmt.Errorf("tech: node %s has no %v capacitor", n.Name, kind)
	}
	return c, nil
}

// Inductor returns the inductor option of the given kind.
func (n *Node) Inductor(kind InductorKind) (InductorOption, error) {
	l, ok := n.Inductors[kind]
	if !ok {
		return InductorOption{}, fmt.Errorf("tech: node %s has no %v inductor", n.Name, kind)
	}
	return l, nil
}

// SwitchForVoltage returns the cheapest device class able to block v volts,
// together with the number of stacked devices required. Stacking multiplies
// both on-resistance and area by the stack count. Core devices are preferred
// while the stack stays small because their R·C figure of merit is better.
func (n *Node) SwitchForVoltage(v float64) (SwitchDevice, int, error) {
	type cand struct {
		dev   SwitchDevice
		stack int
		fom   float64
	}
	var best *cand
	for _, class := range []DeviceClass{CoreDevice, IODevice} {
		dev, ok := n.Switches[class]
		if !ok {
			continue
		}
		stack := 1
		for float64(stack)*dev.VMax < v {
			stack++
			if stack > 8 {
				break
			}
		}
		if float64(stack)*dev.VMax < v {
			continue
		}
		// Figure of merit: effective Ron*Cg product after stacking.
		fom := dev.ROnWidth * float64(stack) * dev.CGatePerWidth * float64(stack)
		c := cand{dev: dev, stack: stack, fom: fom}
		if best == nil || c.fom < best.fom {
			bc := c
			best = &bc
		}
	}
	if best == nil {
		return SwitchDevice{}, 0, fmt.Errorf("tech: node %s has no switch able to block %.2f V", n.Name, v)
	}
	return best.dev, best.stack, nil
}

var (
	mu       sync.RWMutex
	registry = map[string]*Node{}
)

// Lookup returns the node registered under name (e.g. "45nm").
func Lookup(name string) (*Node, error) {
	mu.RLock()
	defer mu.RUnlock()
	n, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("tech: unknown technology node %q (have %v)", name, nodeNamesLocked())
	}
	return n, nil
}

// MustLookup is Lookup for known-good built-in names; it panics on a miss.
func MustLookup(name string) *Node {
	n, err := Lookup(name)
	if err != nil {
		panic(err)
	}
	return n
}

// AddNode registers (or replaces) a node in the database, supporting the
// paper's "built-in and extensible" technology tables.
func AddNode(n *Node) error {
	if n == nil || n.Name == "" {
		return fmt.Errorf("tech: AddNode requires a named node")
	}
	if len(n.Switches) == 0 {
		return fmt.Errorf("tech: node %s must provide at least one switch device", n.Name)
	}
	mu.Lock()
	defer mu.Unlock()
	registry[n.Name] = n
	return nil
}

// Nodes returns the sorted list of registered node names.
func Nodes() []string {
	mu.RLock()
	defer mu.RUnlock()
	return nodeNamesLocked()
}

func nodeNamesLocked() []string {
	names := make([]string, 0, len(registry))
	for k := range registry {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
