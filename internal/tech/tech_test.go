package tech

import (
	"math"
	"testing"

	"ivory/internal/numeric"
)

func TestLookupBuiltinNodes(t *testing.T) {
	for _, name := range []string{"130nm", "90nm", "65nm", "45nm", "32nm", "22nm", "14nm", "10nm"} {
		n, err := Lookup(name)
		if err != nil {
			t.Fatalf("Lookup(%s): %v", name, err)
		}
		if n.Name != name {
			t.Errorf("node name %s != %s", n.Name, name)
		}
		if n.VddNominal <= 0 || n.FeatureM <= 0 {
			t.Errorf("%s: non-positive basic fields: %+v", name, n)
		}
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, err := Lookup("7nm"); err == nil {
		t.Error("expected error for unknown node")
	}
}

func TestMustLookupPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustLookup should panic on unknown node")
		}
	}()
	MustLookup("not-a-node")
}

func TestScalingTrends(t *testing.T) {
	names := []string{"130nm", "90nm", "65nm", "45nm", "32nm", "22nm", "14nm", "10nm"}
	for i := 1; i < len(names); i++ {
		older := MustLookup(names[i-1])
		newer := MustLookup(names[i])
		oc := older.Switches[CoreDevice]
		nc := newer.Switches[CoreDevice]
		if nc.ROnWidth >= oc.ROnWidth {
			t.Errorf("Ron*W should improve %s -> %s", names[i-1], names[i])
		}
		if nc.LeakPerWidth <= oc.LeakPerWidth {
			t.Errorf("leakage per width should worsen %s -> %s", names[i-1], names[i])
		}
		om := older.Capacitors[MOSCap]
		nm := newer.Capacitors[MOSCap]
		if nm.DensityFPerM2 <= om.DensityFPerM2 {
			t.Errorf("MOS cap density should grow %s -> %s", names[i-1], names[i])
		}
		if newer.VddNominal > older.VddNominal {
			t.Errorf("Vdd should not grow %s -> %s", names[i-1], names[i])
		}
	}
}

func TestSwitchDeviceScaling(t *testing.T) {
	n := MustLookup("45nm")
	sw, err := n.Switch(CoreDevice)
	if err != nil {
		t.Fatal(err)
	}
	w := 1e-3 // 1 mm of width
	r := sw.ROn(w)
	if r <= 0 {
		t.Fatal("ROn must be positive")
	}
	// Doubling the width halves the resistance and doubles the caps.
	if math.Abs(sw.ROn(2*w)-r/2) > 1e-12*r {
		t.Error("ROn does not scale as 1/W")
	}
	if math.Abs(sw.CGate(2*w)-2*sw.CGate(w)) > 1e-25 {
		t.Error("CGate does not scale with W")
	}
	if math.Abs(sw.WidthForROn(r)-w) > 1e-15 {
		t.Error("WidthForROn is not the inverse of ROn")
	}
	if sw.Area(w) <= 0 || sw.Leakage(w) <= 0 {
		t.Error("area/leakage should be positive")
	}
	if sw.ROn(0) != 0 || sw.WidthForROn(0) != 0 {
		t.Error("zero-width edge cases")
	}
}

func TestSwitchForVoltage(t *testing.T) {
	n := MustLookup("45nm")
	// Low-voltage switch: core device, single stack.
	dev, stack, err := n.SwitchForVoltage(0.9)
	if err != nil {
		t.Fatal(err)
	}
	if dev.Class != CoreDevice || stack != 1 {
		t.Errorf("0.9 V: got %v stack %d, want core stack 1", dev.Class, stack)
	}
	// 3.3 V needs either a deep core stack or the IO device; the IO device
	// should win on the Ron*Cg figure of merit.
	dev33, stack33, err := n.SwitchForVoltage(3.3)
	if err != nil {
		t.Fatal(err)
	}
	if float64(stack33)*dev33.VMax < 3.3 {
		t.Errorf("returned switch cannot block 3.3 V: %v x%d", dev33.VMax, stack33)
	}
	if dev33.Class != IODevice {
		t.Errorf("expected IO device for 3.3 V, got %v (stack %d)", dev33.Class, stack33)
	}
	// Absurd voltage: error.
	if _, _, err := n.SwitchForVoltage(100); err == nil {
		t.Error("expected error for 100 V")
	}
}

func TestCapacitorOptions(t *testing.T) {
	n := MustLookup("45nm")
	mos, err := n.Capacitor(MOSCap)
	if err != nil {
		t.Fatal(err)
	}
	trench, err := n.Capacitor(DeepTrench)
	if err != nil {
		t.Fatal(err)
	}
	if trench.DensityFPerM2 <= mos.DensityFPerM2 {
		t.Error("deep trench must be denser than MOS cap")
	}
	if trench.BottomPlateRatio >= mos.BottomPlateRatio {
		t.Error("deep trench must have lower bottom-plate ratio")
	}
	c := 1e-9 // 1 nF
	if mos.Area(c) <= 0 {
		t.Error("capacitor area must be positive")
	}
	// Area halves when density doubles: consistency check via trench.
	if trench.Area(c) >= mos.Area(c) {
		t.Error("denser capacitor should use less area")
	}
	if mos.ESR(c) <= 0 || mos.ESR(0) != 0 {
		t.Error("ESR behaviour wrong")
	}
	// 130 nm has no trench cap.
	if _, err := MustLookup("130nm").Capacitor(DeepTrench); err == nil {
		t.Error("130nm should not offer deep trench")
	}
}

func TestInductorFrequencyRollOff(t *testing.T) {
	n := MustLookup("45nm")
	ind, err := n.Inductor(IntegratedThinFilm)
	if err != nil {
		t.Fatal(err)
	}
	l0 := 10e-9
	lLow := ind.LEff(l0, 10e6)
	lHigh := ind.LEff(l0, 500e6)
	if lHigh >= lLow {
		t.Errorf("integrated inductance should roll off with f: %v vs %v", lLow, lHigh)
	}
	if ind.LEff(l0, 100e9) < 0.2*l0*0.99 {
		t.Error("roll-off must be floored at 20%")
	}
	// Resistance grows with frequency (skin effect).
	if ind.Resistance(l0, 1e9) <= ind.Resistance(l0, 0) {
		t.Error("AC resistance should exceed DCR")
	}
	if ind.Area(l0) <= 0 {
		t.Error("integrated inductor area must be positive")
	}
	sm, err := n.Inductor(SurfaceMount)
	if err != nil {
		t.Fatal(err)
	}
	if !numeric.ApproxEqual(sm.Area(1e-6), sm.FixedAreaM2, 0) {
		t.Error("surface-mount area should be the fixed footprint")
	}
}

func TestAddNodeValidation(t *testing.T) {
	if err := AddNode(nil); err == nil {
		t.Error("nil node must be rejected")
	}
	if err := AddNode(&Node{Name: ""}); err == nil {
		t.Error("unnamed node must be rejected")
	}
	if err := AddNode(&Node{Name: "x"}); err == nil {
		t.Error("node without switches must be rejected")
	}
	custom := &Node{
		Name:       "custom-28nm",
		FeatureM:   28e-9,
		VddNominal: 0.95,
		Switches: map[DeviceClass]SwitchDevice{
			CoreDevice: {Class: CoreDevice, ROnWidth: 1e-3, CGatePerWidth: 1e-9, VMax: 1.1, AreaPerWidth: 1e-6},
		},
		Capacitors: map[CapacitorKind]CapacitorOption{},
		Inductors:  map[InductorKind]InductorOption{},
	}
	if err := AddNode(custom); err != nil {
		t.Fatal(err)
	}
	got, err := Lookup("custom-28nm")
	if err != nil || !numeric.ApproxEqual(got.VddNominal, 0.95, 0) {
		t.Errorf("custom node roundtrip failed: %v %v", got, err)
	}
}

func TestNodesSorted(t *testing.T) {
	names := Nodes()
	if len(names) < 8 {
		t.Fatalf("expected >= 8 builtin nodes, got %d", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Error("Nodes() must be sorted")
		}
	}
}

func TestLEffWithEmptyPolynomial(t *testing.T) {
	ind := InductorOption{LFreqCoeff: nil}
	if !numeric.ApproxEqual(ind.LEff(5e-9, 1e9), 5e-9, 0) {
		t.Error("empty polynomial should mean frequency-independent L")
	}
	ind2 := InductorOption{LFreqCoeff: numeric.Polynomial{1}}
	if !numeric.ApproxEqual(ind2.LEff(5e-9, 1e9), 5e-9, 0) {
		t.Error("unit polynomial should leave L unchanged")
	}
}

func TestDeviceClassStrings(t *testing.T) {
	if CoreDevice.String() != "core" || IODevice.String() != "io" {
		t.Error("DeviceClass strings")
	}
	if MOSCap.String() != "mos" || DeepTrench.String() != "deep-trench" || MIMCap.String() != "mim" {
		t.Error("CapacitorKind strings")
	}
	if SurfaceMount.String() != "surface-mount" || IntegratedThinFilm.String() != "integrated-thin-film" {
		t.Error("InductorKind strings")
	}
	if DeviceClass(9).String() == "" || CapacitorKind(9).String() == "" || InductorKind(9).String() == "" {
		t.Error("unknown enum strings should be non-empty")
	}
}
