package pds

import (
	"math"
	"sync"
	"sync/atomic"

	"ivory/internal/workload"
)

// Per-benchmark core current traces are memoized package-wide: every
// configuration of a case-study cell (off-chip VRM, 1, 2 and 4 IVRs) draws
// the same workload at the same voltage, so without the memo the engine
// re-synthesizes identical traces four times per benchmark — a third of a
// cell's cost. The key carries everything the traces depend on: a digest of
// the full benchmark parameter set, core count, TDP, sample interval and
// count, supply voltage, seed, and the complete load model. Cached traces
// are shared across callers and goroutines and are strictly read-only,
// which the engine's determinism tests exercise under the race detector.
var (
	traceCache  sync.Map // traceKey -> [][]float64
	traceCount  atomic.Int64
	traceHits   atomic.Int64
	traceMisses atomic.Int64
)

// traceCacheLimit bounds the memo so streams of one-off systems cannot grow
// it without bound; past the limit, traces are computed but not stored. One
// entry holds Cores full-length traces (~320 KB at case-study settings), so
// the cap also bounds the resident set to a few tens of MB.
const traceCacheLimit = 64

type traceKey struct {
	benchSig uint64 // Source.TraceSignature of the workload
	cores    int
	tdp      float64
	dt       float64
	n        int
	v        float64
	seed     int64
	load     workload.LoadModel
}

// TraceCacheStats returns the cumulative hit/miss counters of the
// package-wide core-current trace memo. The counters only grow; callers
// wanting per-run telemetry snapshot before and diff after, with the same
// caveat as topology.CacheStats: concurrent runs share the counters.
func TraceCacheStats() (hits, misses int64) {
	return traceHits.Load(), traceMisses.Load()
}

// FNV-1a, inlined rather than importing hash/fnv so the digest helpers stay
// allocation-free and usable on mixed field types.
const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

func fnv1aString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime64
	}
	return h
}

func fnv1aU64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = (h ^ (v & 0xff)) * fnvPrime64
		v >>= 8
	}
	return h
}

func fnv1aFloat(h uint64, f float64) uint64 { return fnv1aU64(h, math.Float64bits(f)) }

// benchStreamSeed derives the PRNG stream seed for one core of one
// benchmark. The name enters through an FNV-1a hash: the previous
// len(bench.Name) offset collided for benchmarks whose names share a length,
// handing them identical power traces (the satellite regression test pins
// this). XOR-folding the hash avoids signed-overflow games while keeping the
// derivation deterministic.
func benchStreamSeed(base int64, name string, core int) int64 {
	h := fnv1aString(fnvOffset64, name)
	h = fnv1aU64(h, uint64(core))
	return base ^ int64(h)
}

// coreCurrentsCached returns the per-core current traces for one benchmark,
// memoized package-wide. The returned slices are shared: callers must treat
// them as read-only.
//
// The size cap is enforced by reserving a slot before storing (the same CAS
// discipline as topology's Analyze memo): a plain check-then-store would let
// N concurrent first-sight misses overshoot the bound by the worker count.
func (s *System) coreCurrentsCached(src workload.Source, dt float64, n int, v float64) [][]float64 {
	key := traceKey{
		benchSig: src.TraceSignature(),
		cores:    s.Cores,
		tdp:      s.TDPPerCore,
		dt:       dt,
		n:        n,
		v:        v,
		seed:     s.Seed,
		load:     s.Load,
	}
	if got, ok := traceCache.Load(key); ok {
		traceHits.Add(1)
		return got.([][]float64)
	}
	traceMisses.Add(1)
	out := s.coreCurrents(src, dt, n, v)
	for {
		c := traceCount.Load()
		if c >= traceCacheLimit {
			return out
		}
		if !traceCount.CompareAndSwap(c, c+1) {
			continue // another goroutine moved the count; re-check the cap
		}
		if _, loaded := traceCache.LoadOrStore(key, out); loaded {
			traceCount.Add(-1) // lost the insert race; give the slot back
		}
		return out
	}
}
