package pds

import (
	"testing"

	"ivory/internal/grid"
	"ivory/internal/pdn"
	"ivory/internal/sc"
	"ivory/internal/tech"
	"ivory/internal/topology"
	"ivory/internal/workload"

	"ivory/internal/numeric"
)

func testSystem(t *testing.T) *System {
	t.Helper()
	net, err := pdn.TypicalOffChip(100e-9, 1.2e-3)
	if err != nil {
		t.Fatal(err)
	}
	return &System{
		Cores:      4,
		TDPPerCore: 5,
		VNominal:   0.85,
		VSource:    3.3,
		Load:       workload.LoadModel{PNominal: 5, VNominal: 0.85, LeakFraction: 0.25},
		GridR:      2.5e-3,
		GridL:      25e-12,
		Network:    net,
		Seed:       12345,
	}
}

func testDesign(t *testing.T) *sc.Design {
	t.Helper()
	top, err := topology.SeriesParallel(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	an, err := top.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	// Total (chip-level) converter sized for ~24 A across 4 cores.
	d, err := sc.New(sc.Config{
		Analysis:   an,
		Node:       tech.MustLookup("45nm"),
		CapKind:    tech.DeepTrench,
		VIn:        3.3,
		VOut:       0.85,
		CTotal:     2.4e-6,
		GTotal:     4000,
		CDecap:     400e-9,
		Interleave: 32,
		FSwMax:     500e6,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestSystemValidate(t *testing.T) {
	s := testSystem(t)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := *s
	bad.Cores = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero cores must fail")
	}
	bad = *s
	bad.VSource = 0.5
	if err := bad.Validate(); err == nil {
		t.Error("VSource below VNominal must fail")
	}
	bad = *s
	bad.Network = nil
	if err := bad.Validate(); err == nil {
		t.Error("missing network must fail")
	}
}

func TestOffChipVRMNoise(t *testing.T) {
	s := testSystem(t)
	bench, _ := workload.Get("CFD")
	res, err := s.SimulateOffChipVRM(bench, 20e-6, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if res.Config != "off-chip VRM" || res.Benchmark != "CFD" {
		t.Errorf("labels wrong: %+v", res.Config)
	}
	if res.NoiseVpp <= 0 {
		t.Fatal("no noise measured")
	}
	// Plausibility: tens of mV, not volts.
	if res.NoiseVpp > 0.5 || res.NoiseVpp < 0.005 {
		t.Errorf("off-chip noise implausible: %v V", res.NoiseVpp)
	}
	if len(res.Times) != len(res.VCore) {
		t.Error("trace shape mismatch")
	}
	st := res.Stats()
	if st.N == 0 || st.Min > st.Max {
		t.Error("stats wrong")
	}
}

// The case study's central result (Fig. 11): noise shrinks monotonically
// from off-chip VRM -> centralized IVR -> 2 IVRs -> 4 IVRs.
func TestNoiseOrderingAcrossConfigs(t *testing.T) {
	s := testSystem(t)
	d := testDesign(t)
	bench, _ := workload.Get("CFD")
	T, dt := 20e-6, 1e-9

	off, err := s.SimulateOffChipVRM(bench, T, dt)
	if err != nil {
		t.Fatal(err)
	}
	var vpp []float64
	for _, n := range []int{1, 2, 4} {
		r, err := s.SimulateIVR(d, n, bench, T, dt)
		if err != nil {
			t.Fatalf("%d IVRs: %v", n, err)
		}
		vpp = append(vpp, r.NoiseVpp)
	}
	t.Logf("noise: off=%.1fmV cen=%.1fmV 2dist=%.1fmV 4dist=%.1fmV",
		off.NoiseVpp*1e3, vpp[0]*1e3, vpp[1]*1e3, vpp[2]*1e3)
	if !(off.NoiseVpp > vpp[0] && vpp[0] > vpp[1] && vpp[1] > vpp[2]) {
		t.Errorf("noise ordering violated: off=%v cen=%v two=%v four=%v",
			off.NoiseVpp, vpp[0], vpp[1], vpp[2])
	}
}

func TestSimulateIVRValidation(t *testing.T) {
	s := testSystem(t)
	d := testDesign(t)
	bench, _ := workload.Get("CFD")
	if _, err := s.SimulateIVR(d, 3, bench, 10e-6, 1e-9); err == nil {
		t.Error("3 IVRs for 4 cores must fail")
	}
	if _, err := s.SimulateIVR(d, 0, bench, 10e-6, 1e-9); err == nil {
		t.Error("zero IVRs must fail")
	}
	if _, err := s.SimulateIVR(d, 1, bench, 1e-9, 1e-9); err == nil {
		t.Error("too-short trace must fail")
	}
}

func TestPowerBreakdownOffChip(t *testing.T) {
	s := testSystem(t)
	b, err := s.PowerBreakdown(BreakdownParams{
		Config:        "off-chip VRM",
		Margin:        0.125,
		VRMEfficiency: 0.90,
		NumIVRs:       0,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !numeric.ApproxEqual(b.PCoreUseful, 20, 0) {
		t.Errorf("useful power %v, want 20", b.PCoreUseful)
	}
	if b.PMargin <= 0 || b.PVRMLoss <= 0 || b.PPDNIR <= 0 || b.PGridIR <= 0 {
		t.Errorf("breakdown incomplete: %+v", b)
	}
	if b.PIVRLoss != 0 {
		t.Error("off-chip config must not have an IVR loss term")
	}
	if b.Efficiency <= 0 || b.Efficiency >= 1 {
		t.Errorf("efficiency %v out of range", b.Efficiency)
	}
	// Energy conservation: source covers everything.
	sum := b.PCoreUseful + b.PMargin + b.PGridIR + b.PIVRLoss + b.PPDNIR + b.PVRMLoss
	if diff := (b.PSource - sum) / b.PSource; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("power ladder does not sum: source %v vs parts %v", b.PSource, sum)
	}
}

// Fig. 13's conclusion: the distributed-IVR PDS beats the off-chip VRM PDS
// on delivery efficiency, driven by the smaller guardband and the PDN
// carrying current at 3.3 V.
func TestDistributedIVRBeatsOffChip(t *testing.T) {
	s := testSystem(t)
	off, err := s.PowerBreakdown(BreakdownParams{
		Config: "off-chip VRM", Margin: 0.125, VRMEfficiency: 0.90, NumIVRs: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	ivr, err := s.PowerBreakdown(BreakdownParams{
		Config: "4 distributed IVRs", Margin: 0.025,
		IVREfficiency: 0.80, VRMEfficiency: 0.97, NumIVRs: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("efficiency: off-chip %.1f%%, 4 IVRs %.1f%%", off.Efficiency*100, ivr.Efficiency*100)
	if ivr.Efficiency <= off.Efficiency {
		t.Errorf("IVR PDS should win: %v vs %v", ivr.Efficiency, off.Efficiency)
	}
	gain := ivr.Efficiency - off.Efficiency
	if gain < 0.02 || gain > 0.25 {
		t.Errorf("efficiency gain %v outside the plausible band around the paper's 9.5%%", gain)
	}
}

func TestPowerBreakdownValidation(t *testing.T) {
	s := testSystem(t)
	if _, err := s.PowerBreakdown(BreakdownParams{Margin: -1, VRMEfficiency: 0.9}); err == nil {
		t.Error("negative margin must fail")
	}
	if _, err := s.PowerBreakdown(BreakdownParams{VRMEfficiency: 0}); err == nil {
		t.Error("zero VRM efficiency must fail")
	}
	if _, err := s.PowerBreakdown(BreakdownParams{VRMEfficiency: 0.9, NumIVRs: 2, IVREfficiency: 0}); err == nil {
		t.Error("zero IVR efficiency must fail")
	}
}

func TestCalibrateGridFromMesh(t *testing.T) {
	s := testSystem(t)
	m, err := grid.NewMesh(16, 16, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	old := s.GridR
	if err := s.CalibrateGridFromMesh(m); err != nil {
		t.Fatal(err)
	}
	if s.GridR <= 0 {
		t.Fatal("calibrated grid resistance must be positive")
	}
	if numeric.ApproxEqual(s.GridR, old, 0) {
		t.Error("calibration should change the hand-set value")
	}
	if err := s.CalibrateGridFromMesh(nil); err == nil {
		t.Error("nil mesh must fail")
	}
}
