// Package pds composes complete power-delivery subsystems — off-chip VRM +
// PDN + optional on-chip IVRs + digital loads — and evaluates them the way
// the paper's case study does (§5): workload-driven voltage-noise traces
// per configuration (Figs. 10-11), guardband extraction, and the final
// source-to-core power breakdown and delivery efficiency (Fig. 13).
//
// Configurations compared:
//
//   - Off-chip VRM: conversion at the board, the full PDN carries the core
//     current at core voltage — large IR drop and the package-resonance
//     first droop set a wide guardband.
//   - Centralized / distributed IVRs: the PDN carries current at the board
//     voltage (3.3 V), an on-chip SC converter regulates near the load, and
//     distributing N IVRs shrinks the residual on-chip grid impedance per
//     core by ~1/N — the mechanism behind the paper's finding that four
//     distributed IVRs minimize noise.
package pds

import (
	"context"
	"fmt"

	"ivory/internal/dynamic"
	"ivory/internal/grid"
	"ivory/internal/ldo"
	"ivory/internal/numeric"
	"ivory/internal/pdn"
	"ivory/internal/sc"
	"ivory/internal/workload"
)

// System describes the manycore platform under study.
type System struct {
	// Cores is the number of SM-class cores (the paper uses 4).
	Cores int
	// TDPPerCore is each core's average power (W) at nominal voltage.
	TDPPerCore float64
	// VNominal is the core's nominal supply (V).
	VNominal float64
	// VSource is the board supply feeding the PDS (V).
	VSource float64
	// Load is the per-core current model.
	Load workload.LoadModel
	// GridR and GridL are the on-chip grid impedance from a centralized
	// regulation point to a core; distributing N IVRs divides both by N.
	GridR, GridL float64
	// Network is the off-chip PDN (board + package + die).
	Network *pdn.Network
	// Seed makes workload synthesis reproducible.
	Seed int64
}

// CalibrateGridFromMesh derives the System's lumped grid resistance from
// floorplan geometry: the worst-case effective resistance of a centralized
// regulator placement on the given mesh over the core sites. The dynamic
// analysis then divides it by the distribution count as before, an
// approximation the grid-scaling study (ivory-exp gridscale) quantifies.
func (s *System) CalibrateGridFromMesh(m *grid.Mesh) error {
	if m == nil {
		return fmt.Errorf("pds: nil mesh")
	}
	cores := m.QuadCores()
	taps, err := m.PlaceIVRs(1, cores)
	if err != nil {
		return err
	}
	r, err := m.WorstCaseResistance(taps, cores)
	if err != nil {
		return err
	}
	s.GridR = r
	return nil
}

// Validate checks the system description.
func (s *System) Validate() error {
	if s.Cores < 1 {
		return fmt.Errorf("pds: need at least one core")
	}
	if s.TDPPerCore <= 0 || s.VNominal <= 0 || s.VSource <= s.VNominal {
		return fmt.Errorf("pds: TDPPerCore, VNominal must be positive and VSource above VNominal")
	}
	if err := s.Load.Validate(); err != nil {
		return err
	}
	if s.GridR < 0 || s.GridL < 0 {
		return fmt.Errorf("pds: negative grid impedance")
	}
	if s.Network == nil {
		return fmt.Errorf("pds: off-chip network is required")
	}
	return nil
}

// NoiseResult is the outcome of one configuration x benchmark simulation.
type NoiseResult struct {
	// Config names the PDS configuration ("off-chip VRM", "1 IVR", ...).
	Config string
	// Benchmark is the workload name.
	Benchmark string
	// Times and VCore sample the worst core's supply voltage. They are nil
	// when the simulation ran with SimOptions.KeepTrace false.
	Times, VCore []float64
	// VStats is the distribution summary of VCore, computed during the
	// simulation so it survives even when the trace itself is dropped.
	VStats numeric.Summary
	// NoiseVpp is max-min of VCore.
	NoiseVpp float64
	// WorstDroop is VNominal - min(VCore).
	WorstDroop float64
}

func (s *System) coreCurrents(src workload.Source, dt float64, n int, v float64) [][]float64 {
	out := make([][]float64, s.Cores)
	for c := 0; c < s.Cores; c++ {
		p := src.PowerTraceInto(nil, s.TDPPerCore, dt, n, benchStreamSeed(s.Seed, src.TraceName(), c))
		out[c] = s.Load.CurrentTrace(p, v)
	}
	return out
}

func sumTraces(traces [][]float64) []float64 {
	return sumTracesInto(nil, traces)
}

// sumTracesInto sums traces sample-wise into dst (grown when too small; may
// be nil). An empty trace set returns nil, matching sumTraces.
func sumTracesInto(dst []float64, traces [][]float64) []float64 {
	if len(traces) == 0 {
		return nil
	}
	n := len(traces[0])
	out := dst
	if cap(out) < n {
		out = make([]float64, n)
	} else {
		out = out[:n]
	}
	copy(out, traces[0])
	for _, tr := range traces[1:] {
		for i, v := range tr {
			out[i] += v
		}
	}
	return out
}

// gridDrop subtracts the local grid IR + L·di/dt drop of the first core's
// current from the regulated node voltage.
func gridDrop(vReg, iCore []float64, dt, r, l float64) []float64 {
	return gridDropInto(nil, vReg, iCore, dt, r, l)
}

// gridDropInto is gridDrop with buffer reuse (dst may be nil).
//
// The k=0 sample intentionally carries no inductive term: both transient
// models enter the trace in steady state at the initial load (pdn.Transient
// applies a DC initial condition; the SC loop starts settled at its
// reference), so the segment current is flat across the first sample
// boundary — i[-1] ≡ i[0] and di/dt = 0. Differencing against an artificial
// zero-current prior sample would instead inject a spurious L·i[0]/dt
// turn-on droop into every noise statistic. A unit test pins this contract.
func gridDropInto(dst, vReg, iCore []float64, dt, r, l float64) []float64 {
	out := dst
	if cap(out) < len(vReg) {
		out = make([]float64, len(vReg))
	} else {
		out = out[:len(vReg)]
	}
	for k := range vReg {
		drop := iCore[k] * r
		if k > 0 && l > 0 {
			drop += l * (iCore[k] - iCore[k-1]) / dt
		}
		out[k] = vReg[k] - drop
	}
	return out
}

// Scratch holds the reusable buffers of one transient-engine worker: summed
// load currents, raw simulator output, decimated and derived traces, and the
// summary workspace. A zero Scratch is ready to use; buffers grow on first
// use and are recycled afterwards. A Scratch must not be shared between
// concurrently running simulations — give each worker its own.
type Scratch struct {
	total []float64     // summed load current
	ts    []float64     // PDN sample times
	vs    []float64     // PDN node voltages
	vReg  []float64     // decimated regulated voltage
	times []float64     // decimated sample times
	vCore []float64     // core voltage after grid drop
	stats []float64     // SummarizeInPlace workspace (gets permuted)
	tr    dynamic.Trace // SC simulator waveform
}

// SimOptions controls one simulation call of the transient engine.
type SimOptions struct {
	// KeepTrace retains Times and VCore on the result. When false the
	// engine still fills VStats/NoiseVpp/WorstDroop but the result holds no
	// trace, so box-plot cells never retain the full waveform.
	KeepTrace bool
	// Scratch recycles buffers across simulations; nil uses per-call
	// storage.
	Scratch *Scratch
}

func (o SimOptions) scratch() *Scratch {
	if o.Scratch != nil {
		return o.Scratch
	}
	return &Scratch{}
}

// grow returns a length-n slice backed by buf when its capacity suffices, or
// a fresh one otherwise. Contents are unspecified.
func grow(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// summarize fills the result's statistics from vCore via the scratch
// workspace (SummarizeInPlace permutes its input, so the trace is copied
// into scr.stats first) and, when requested, copies the trace out so the
// result never aliases scratch storage.
func (r *NoiseResult) summarize(scr *Scratch, times, vCore []float64, vNom float64, keepTrace bool) {
	scr.stats = grow(scr.stats, len(vCore))
	copy(scr.stats, vCore)
	r.VStats = numeric.SummarizeInPlace(scr.stats)
	r.finishStats(vNom)
	if keepTrace {
		r.Times = append([]float64(nil), times...)
		r.VCore = append([]float64(nil), vCore...)
	}
}

// SimulateOffChipVRM produces the core voltage trace for the conventional
// configuration: regulation at the board, the PDN carrying the summed core
// current at core voltage. The VRM output is assumed ripple-free (paper
// §2.2), so all noise comes from PDN impedance. src is any workload.Source
// — a single Benchmark or a PhaseSchedule.
func (s *System) SimulateOffChipVRM(src workload.Source, T, dt float64) (*NoiseResult, error) {
	return s.SimulateOffChipVRMContext(context.Background(), src, T, dt, SimOptions{KeepTrace: true})
}

// SimulateOffChipVRMContext is SimulateOffChipVRM with cancellation (polled
// inside the transient integration, so a cancelled run stops mid-cell) and
// engine options. Returned Times/VCore are freshly allocated, never aliased
// to opt.Scratch, so results outlive the scratch they were built with.
func (s *System) SimulateOffChipVRMContext(ctx context.Context, src workload.Source, T, dt float64, opt SimOptions) (*NoiseResult, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	n := int(T / dt)
	if n < 16 {
		return nil, fmt.Errorf("pds: trace too short (%d samples)", n)
	}
	scr := opt.scratch()
	cores := s.coreCurrentsCached(src, dt, n, s.VNominal)
	if err := checkTraces(src, cores, n); err != nil {
		return nil, err
	}
	scr.total = sumTracesInto(scr.total, cores)
	load := dynamic.Sampled(scr.total, dt)
	ts, vs, err := s.Network.TransientContext(ctx, s.VNominal, func(t float64) float64 { return load(t) }, dt, T, scr.ts, scr.vs)
	if err != nil {
		return nil, err
	}
	scr.ts, scr.vs = ts, vs
	// Clip to n samples for uniformity.
	if len(vs) > n {
		ts, vs = ts[:n], vs[:n]
	}
	// Without on-chip regulation the full grid span from the C4 region to
	// the core applies (the same span a centralized IVR would see).
	scr.vCore = gridDropInto(scr.vCore, vs, cores[0][:len(vs)], dt, s.GridR, s.GridL)
	res := &NoiseResult{
		Config:    "off-chip VRM",
		Benchmark: src.TraceName(),
	}
	res.summarize(scr, ts, scr.vCore, s.VNominal, opt.KeepTrace)
	return res, nil
}

// SimulateIVR produces the core voltage trace for an n-IVR configuration.
// base is the total on-chip converter design (sized for the whole chip);
// it is split evenly across the n IVR instances, each serving Cores/n
// cores. The worst (first) core of the first IVR is traced: regulated IVR
// output minus its local grid drop of GridR/n, GridL/n.
func (s *System) SimulateIVR(base *sc.Design, nIVR int, src workload.Source, T, dt float64) (*NoiseResult, error) {
	return s.SimulateIVRContext(context.Background(), base, nIVR, src, T, dt, SimOptions{KeepTrace: true})
}

// SimulateIVRContext is SimulateIVR with cancellation (polled inside the SC
// simulator loop, so a cancelled run stops mid-cell) and engine options.
// Returned Times/VCore are freshly allocated, never aliased to opt.Scratch.
func (s *System) SimulateIVRContext(ctx context.Context, base *sc.Design, nIVR int, src workload.Source, T, dt float64, opt SimOptions) (*NoiseResult, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if nIVR < 1 || nIVR > s.Cores {
		return nil, fmt.Errorf("pds: IVR count %d outside [1, %d]", nIVR, s.Cores)
	}
	if s.Cores%nIVR != 0 {
		return nil, fmt.Errorf("pds: %d IVRs cannot evenly serve %d cores", nIVR, s.Cores)
	}
	steps := int(T / dt)
	if steps < 16 {
		return nil, fmt.Errorf("pds: trace too short (%d samples)", steps)
	}
	// Split the total converter across instances.
	cfg := base.Config()
	cfg.CTotal /= float64(nIVR)
	cfg.GTotal /= float64(nIVR)
	cfg.CDecap /= float64(nIVR)
	if cfg.Interleave >= nIVR {
		cfg.Interleave /= nIVR
	}
	inst, err := sc.New(cfg)
	if err != nil {
		return nil, fmt.Errorf("pds: per-IVR design: %w", err)
	}
	coresPerIVR := s.Cores / nIVR
	scr := opt.scratch()
	all := s.coreCurrentsCached(src, dt, steps, s.VNominal)
	if err := checkTraces(src, all, steps); err != nil {
		return nil, err
	}
	scr.total = sumTracesInto(scr.total, all[:coresPerIVR])
	ivrLoad := scr.total
	// Clock the hysteretic loop for the per-IVR worst-case load.
	_, iPk := numeric.MinMax(ivrLoad)
	params, err := dynamic.SCFromDesignAtLoad(inst, iPk*1.2)
	if err != nil {
		return nil, fmt.Errorf("pds: IVR cannot sustain the peak load: %w", err)
	}
	sim := &dynamic.SCSimulator{P: params}
	// The in-cycle step must resolve the interleaved pump ticks; refine
	// below the requested dt if needed and decimate afterwards.
	nSlices := params.Interleave
	if nSlices == 0 {
		nSlices = 1
	}
	tick := 1 / (params.FClk * float64(nSlices))
	factor := 1
	for dt/float64(factor) > tick {
		factor++
	}
	dtSim := dt / float64(factor)
	tr, err := sim.RunInto(ctx, &scr.tr, dynamic.Sampled(ivrLoad, dt), dynamic.Constant(s.VNominal), T, dtSim)
	if err != nil {
		return nil, err
	}
	scr.vReg = grow(scr.vReg, steps)
	scr.times = grow(scr.times, steps)
	for k := 0; k < steps; k++ {
		scr.vReg[k] = tr.V[k*factor]
		scr.times[k] = tr.Times[k*factor]
	}
	// Local grid segment shrinks with distribution.
	scr.vCore = gridDropInto(scr.vCore, scr.vReg, all[0][:steps], dt, s.GridR/float64(nIVR), s.GridL/float64(nIVR))
	name := fmt.Sprintf("%d distributed IVRs", nIVR)
	if nIVR == 1 {
		name = "centralized IVR"
	}
	res := &NoiseResult{
		Config:    name,
		Benchmark: src.TraceName(),
	}
	res.summarize(scr, scr.times, scr.vCore, s.VNominal, opt.KeepTrace)
	return res, nil
}

// checkTraces rejects a workload source that produced no (or truncated)
// traces — an invalid PhaseSchedule is the one Source that can fail
// synthesis, and it fails by returning nil.
func checkTraces(src workload.Source, traces [][]float64, n int) error {
	for _, tr := range traces {
		if len(tr) < n {
			return fmt.Errorf("pds: workload source %q produced no usable trace (invalid schedule?)", src.TraceName())
		}
	}
	return nil
}

// SimulateDigitalLDO produces the core voltage trace for a centralized
// digital-LDO configuration; see SimulateDigitalLDOContext.
func (s *System) SimulateDigitalLDO(des *ldo.Design, src workload.Source, T, dt float64) (*NoiseResult, error) {
	return s.SimulateDigitalLDOContext(context.Background(), des, src, T, dt, SimOptions{KeepTrace: true})
}

// SimulateDigitalLDOContext runs the fourth delivery style: a centralized
// on-chip digital LDO regulating the cores from a board-supplied input
// rail at des.Config().VIn (the board VRM produces VNominal plus the LDO
// headroom; the input rail is assumed stiff, the same idealization the IVR
// path applies to its 3.3 V feed). The clocked bang-bang/proportional loop
// is simulated by dynamic.LDOSimulator at a step refined to resolve the
// controller sampling period, then decimated back to dt — mirroring the
// SC path's interleave-tick refinement. The worst (first) core sits behind
// the full-span grid segment, as with any centralized regulation point.
//
// Cancellation is polled before and after the dynamic run (the LDO
// simulator itself is not cancellable), so a cancelled sweep stops between
// cells rather than mid-integration.
func (s *System) SimulateDigitalLDOContext(ctx context.Context, des *ldo.Design, src workload.Source, T, dt float64, opt SimOptions) (*NoiseResult, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if des == nil {
		return nil, fmt.Errorf("pds: nil LDO design")
	}
	steps := int(T / dt)
	if steps < 16 {
		return nil, fmt.Errorf("pds: trace too short (%d samples)", steps)
	}
	scr := opt.scratch()
	all := s.coreCurrentsCached(src, dt, steps, s.VNominal)
	if err := checkTraces(src, all, steps); err != nil {
		return nil, err
	}
	scr.total = sumTracesInto(scr.total, all)
	_, iPk := numeric.MinMax(scr.total)
	if iPk > des.MaxCurrent() {
		return nil, fmt.Errorf("pds: LDO cannot sustain the peak load: %.3g A exceeds the %.3g A dropout limit",
			iPk, des.MaxCurrent())
	}
	params := dynamic.LDOFromDesign(des)
	// Proportional multi-segment updates: the controller class the
	// paper-cited digital LDOs implement, and the one that can track
	// benchmark-scale load steps within a sampling period.
	params.Proportional = true
	sim := &dynamic.LDOSimulator{P: params}
	// The dynamic model requires the step to resolve the controller
	// sampling period; refine below the requested dt and decimate after.
	tick := 1 / params.FSample
	factor := 1
	for dt/float64(factor) > tick {
		factor++
	}
	dtSim := dt / float64(factor)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	tr, err := sim.Run(dynamic.Sampled(scr.total, dt), dynamic.Constant(s.VNominal), T, dtSim)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	scr.vReg = grow(scr.vReg, steps)
	scr.times = grow(scr.times, steps)
	for k := 0; k < steps; k++ {
		scr.vReg[k] = tr.V[k*factor]
		scr.times[k] = tr.Times[k*factor]
	}
	scr.vCore = gridDropInto(scr.vCore, scr.vReg, all[0][:steps], dt, s.GridR, s.GridL)
	res := &NoiseResult{
		Config:    "digital LDO",
		Benchmark: src.TraceName(),
	}
	res.summarize(scr, scr.times, scr.vCore, s.VNominal, opt.KeepTrace)
	return res, nil
}

func (r *NoiseResult) finishStats(vNom float64) {
	if r.VStats.N == 0 {
		return
	}
	r.NoiseVpp = r.VStats.Max - r.VStats.Min
	r.WorstDroop = vNom - r.VStats.Min
}

// Stats returns the distribution summary of the core voltage (box-plot
// inputs for Fig. 10). It is computed during the simulation, so it remains
// available when the trace itself was dropped (SimOptions.KeepTrace false).
func (r *NoiseResult) Stats() numeric.Summary {
	if r.VStats.N > 0 {
		return r.VStats
	}
	return numeric.Summarize(r.VCore)
}

// Breakdown itemizes source-to-core power for one configuration (Fig. 13).
type Breakdown struct {
	// Config names the configuration.
	Config string
	// PCoreUseful is the computation power at nominal voltage (W).
	PCoreUseful float64
	// PMargin is the extra core power burned because the supply must sit
	// above nominal by the guardband (dynamic power rises ~quadratically).
	PMargin float64
	// PGridIR is on-chip grid conduction loss (W).
	PGridIR float64
	// PIVRLoss is the IVR conversion loss (W); zero for the off-chip case.
	PIVRLoss float64
	// PPDNIR is the off-chip board+package conduction loss (W).
	PPDNIR float64
	// PVRMLoss is the off-chip VRM conversion loss (W).
	PVRMLoss float64
	// PSource is the total power drawn from the source (W).
	PSource float64
	// Efficiency is PCoreUseful / PSource — the paper's power-delivery
	// efficiency metric.
	Efficiency float64
}

// BreakdownParams supplies the conversion efficiencies measured elsewhere.
type BreakdownParams struct {
	// Margin is the voltage guardband (V) from the noise analysis.
	Margin float64
	// IVREfficiency is the IVR conversion efficiency at the operating
	// point (0 for the off-chip configuration).
	IVREfficiency float64
	// VRMEfficiency is the off-chip VRM efficiency for the voltage it
	// must produce in this configuration.
	VRMEfficiency float64
	// NumIVRs is the distribution count (0 = off-chip configuration).
	NumIVRs int
	// Config labels the result.
	Config string
}

// PowerBreakdown computes the steady-state power ladder for one
// configuration at full activity.
func (s *System) PowerBreakdown(p BreakdownParams) (Breakdown, error) {
	if err := s.Validate(); err != nil {
		return Breakdown{}, err
	}
	if p.Margin < 0 {
		return Breakdown{}, fmt.Errorf("pds: negative margin")
	}
	if p.VRMEfficiency <= 0 || p.VRMEfficiency > 1 {
		return Breakdown{}, fmt.Errorf("pds: VRM efficiency %g outside (0, 1]", p.VRMEfficiency)
	}
	if p.NumIVRs > 0 && (p.IVREfficiency <= 0 || p.IVREfficiency > 1) {
		return Breakdown{}, fmt.Errorf("pds: IVR efficiency %g outside (0, 1]", p.IVREfficiency)
	}
	b := Breakdown{Config: p.Config}
	pCore := s.TDPPerCore * float64(s.Cores)
	b.PCoreUseful = pCore
	vOp := s.VNominal + p.Margin
	// Dynamic power scales with V² at fixed frequency; the load model's
	// leakage fraction scales faster but we fold it into the same factor.
	scale := vOp * vOp / (s.VNominal * s.VNominal)
	pCoreActual := pCore * scale
	b.PMargin = pCoreActual - pCore

	rPDN := s.Network.TotalR()
	if p.NumIVRs == 0 {
		// Board VRM converts source to vOp; PDN carries core current, and
		// each core still sits behind the full-span on-chip grid segment.
		iCore := pCoreActual / float64(s.Cores) / vOp
		b.PGridIR = float64(s.Cores) * iCore * iCore * s.GridR
		iPDN := pCoreActual / vOp
		b.PPDNIR = iPDN * iPDN * rPDN
		vrmOut := pCoreActual + b.PGridIR + b.PPDNIR
		b.PVRMLoss = vrmOut * (1 - p.VRMEfficiency) / p.VRMEfficiency
		b.PSource = vrmOut + b.PVRMLoss
	} else {
		// Per-core current through its local grid share.
		iCore := pCoreActual / float64(s.Cores) / vOp
		rGrid := s.GridR / float64(p.NumIVRs)
		b.PGridIR = float64(s.Cores) * iCore * iCore * rGrid
		ivrOut := pCoreActual + b.PGridIR
		b.PIVRLoss = ivrOut * (1 - p.IVREfficiency) / p.IVREfficiency
		ivrIn := ivrOut + b.PIVRLoss
		iPDN := ivrIn / s.VSource
		b.PPDNIR = iPDN * iPDN * rPDN
		vrmOut := ivrIn + b.PPDNIR
		b.PVRMLoss = vrmOut * (1 - p.VRMEfficiency) / p.VRMEfficiency
		b.PSource = vrmOut + b.PVRMLoss
	}
	b.Efficiency = b.PCoreUseful / b.PSource
	return b, nil
}

// PowerBreakdownLDO computes the power ladder for a centralized
// digital-LDO configuration: the board VRM converts the source down to the
// LDO input rail at vOp + headroomV, the PDN carries the chip current at
// that rail, and the LDO's dissipative conversion (pass-device dropout,
// quiescent and controller power — the efficiency ldo.Design.Evaluate
// measures) takes the place of the IVR loss. p.IVREfficiency carries the
// LDO efficiency; p.NumIVRs is ignored (the regulation point is
// centralized, so the full grid span applies).
func (s *System) PowerBreakdownLDO(p BreakdownParams, headroomV float64) (Breakdown, error) {
	if err := s.Validate(); err != nil {
		return Breakdown{}, err
	}
	if p.Margin < 0 {
		return Breakdown{}, fmt.Errorf("pds: negative margin")
	}
	if headroomV <= 0 {
		return Breakdown{}, fmt.Errorf("pds: LDO headroom %g must be positive", headroomV)
	}
	if p.VRMEfficiency <= 0 || p.VRMEfficiency > 1 {
		return Breakdown{}, fmt.Errorf("pds: VRM efficiency %g outside (0, 1]", p.VRMEfficiency)
	}
	if p.IVREfficiency <= 0 || p.IVREfficiency > 1 {
		return Breakdown{}, fmt.Errorf("pds: LDO efficiency %g outside (0, 1]", p.IVREfficiency)
	}
	b := Breakdown{Config: p.Config}
	pCore := s.TDPPerCore * float64(s.Cores)
	b.PCoreUseful = pCore
	vOp := s.VNominal + p.Margin
	scale := vOp * vOp / (s.VNominal * s.VNominal)
	pCoreActual := pCore * scale
	b.PMargin = pCoreActual - pCore

	// Centralized regulation: every core behind the full-span grid segment.
	iCore := pCoreActual / float64(s.Cores) / vOp
	b.PGridIR = float64(s.Cores) * iCore * iCore * s.GridR
	ldoOut := pCoreActual + b.PGridIR
	b.PIVRLoss = ldoOut * (1 - p.IVREfficiency) / p.IVREfficiency
	ldoIn := ldoOut + b.PIVRLoss
	// The PDN carries the chip current at the LDO input rail — barely above
	// core voltage, so unlike the 3.3 V IVR feed the conduction loss stays
	// off-chip-VRM-like. This is the structural handicap of hybrid LDO
	// rails the sweep quantifies.
	vIn := vOp + headroomV
	iPDN := ldoIn / vIn
	b.PPDNIR = iPDN * iPDN * s.Network.TotalR()
	vrmOut := ldoIn + b.PPDNIR
	b.PVRMLoss = vrmOut * (1 - p.VRMEfficiency) / p.VRMEfficiency
	b.PSource = vrmOut + b.PVRMLoss
	b.Efficiency = b.PCoreUseful / b.PSource
	return b, nil
}
