package pds

import (
	"context"
	"errors"
	"math"
	"reflect"
	"sync"
	"testing"

	"ivory/internal/workload"
)

// cancelAfterCtx is a deterministic cancellation source: Err returns nil for
// the first `after` polls and context.Canceled from then on. It lets tests
// cancel mid-simulation at an exact poll count, with no timers or sleeps.
type cancelAfterCtx struct {
	context.Context
	mu    sync.Mutex
	calls int
	after int
}

func (c *cancelAfterCtx) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.calls++
	if c.calls > c.after {
		return context.Canceled
	}
	return nil
}

func sameFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// Regression for the seed-derivation collision: the previous scheme offset
// the stream seed by len(bench.Name), so same-length names sharing all other
// parameters produced identical per-core traces.
func TestBenchStreamSeedSameLengthNames(t *testing.T) {
	if benchStreamSeed(12345, "GEMM", 0) == benchStreamSeed(12345, "Sort", 0) {
		t.Fatal("same-length benchmark names must derive different stream seeds")
	}
	s := testSystem(t)
	mk := func(name string) workload.Benchmark {
		return workload.Benchmark{
			Name: name, Base: 0.6, PhaseAmp: 0.1, PhasePeriod: 5e-6,
			BurstAmp: 0.2, BurstFreqs: []float64{100e6}, StepProb: 0.0, NoiseSigma: 0.02,
		}
	}
	a := s.coreCurrents(mk("AAAA"), 1e-9, 512, s.VNominal)
	b := s.coreCurrents(mk("BBBB"), 1e-9, 512, s.VNominal)
	for c := range a {
		if sameFloats(a[c], b[c]) {
			t.Fatalf("core %d: same-length benchmark names produced identical traces", c)
		}
	}
}

func TestTraceCacheEquivalence(t *testing.T) {
	s := testSystem(t)
	bench, _ := workload.Get("CFD")
	direct := s.coreCurrents(bench, 1e-9, 1024, s.VNominal)
	first := s.coreCurrentsCached(bench, 1e-9, 1024, s.VNominal)
	h0, _ := TraceCacheStats()
	second := s.coreCurrentsCached(bench, 1e-9, 1024, s.VNominal)
	h1, _ := TraceCacheStats()
	if h1 != h0+1 {
		t.Errorf("second identical lookup should hit the cache: hits %d -> %d", h0, h1)
	}
	for c := range direct {
		if !sameFloats(direct[c], first[c]) || !sameFloats(direct[c], second[c]) {
			t.Fatalf("core %d: cached traces differ from the direct computation", c)
		}
	}
	// Different supply voltage is a different key, not a stale hit.
	other := s.coreCurrentsCached(bench, 1e-9, 1024, s.VNominal*0.95)
	if sameFloats(other[0], direct[0]) {
		t.Error("different voltage must not reuse the cached traces")
	}
}

// Pins the k=0 contract documented on gridDropInto: the first sample carries
// the resistive drop only, because the transient models enter the trace in
// steady state (di/dt = 0 across the first boundary). An inductive turn-on
// term would shift every noise statistic.
func TestGridDropSteadyStateStart(t *testing.T) {
	vReg := []float64{1.0, 1.0, 1.0, 1.0}
	iCore := []float64{10, 10, 14, 12}
	dt, r, l := 1e-9, 2e-3, 1e-9 // huge L so a spurious k=0 term would be obvious
	out := gridDrop(vReg, iCore, dt, r, l)
	want0 := vReg[0] - iCore[0]*r
	if math.Float64bits(out[0]) != math.Float64bits(want0) {
		t.Errorf("k=0 sample must be resistive-only: got %v, want %v", out[0], want0)
	}
	want2 := vReg[2] - (iCore[2]*r + l*(iCore[2]-iCore[1])/dt)
	if math.Float64bits(out[2]) != math.Float64bits(want2) {
		t.Errorf("k=2 sample must carry L·di/dt: got %v, want %v", out[2], want2)
	}
	// The Into variant reuses dst and matches exactly.
	dst := make([]float64, 0, len(vReg))
	out2 := gridDropInto(dst, vReg, iCore, dt, r, l)
	if !sameFloats(out, out2) {
		t.Error("gridDropInto differs from gridDrop")
	}
}

func TestSumTracesInto(t *testing.T) {
	traces := [][]float64{{1, 2, 3}, {10, 20, 30}, {0.5, 0.5, 0.5}}
	want := sumTraces(traces)
	got := sumTracesInto(make([]float64, 0, 3), traces)
	if !sameFloats(want, got) {
		t.Errorf("sumTracesInto mismatch: %v vs %v", got, want)
	}
	if sumTracesInto(nil, nil) != nil {
		t.Error("empty trace set must return nil")
	}
}

// The steady-state helpers must not allocate when handed capacity.
func TestHelpersAllocFree(t *testing.T) {
	traces := [][]float64{make([]float64, 4096), make([]float64, 4096), make([]float64, 4096)}
	for i := range traces[0] {
		traces[0][i] = float64(i)
		traces[1][i] = 1.0
		traces[2][i] = 0.25
	}
	dst := make([]float64, 4096)
	if n := testing.AllocsPerRun(20, func() {
		dst = sumTracesInto(dst, traces)
	}); n != 0 {
		t.Errorf("sumTracesInto allocates %.1f times per run with a warm buffer", n)
	}
	vReg, iCore := traces[1], traces[0]
	drop := make([]float64, 4096)
	if n := testing.AllocsPerRun(20, func() {
		drop = gridDropInto(drop, vReg, iCore, 1e-9, 2e-3, 25e-12)
	}); n != 0 {
		t.Errorf("gridDropInto allocates %.1f times per run with a warm buffer", n)
	}
}

// The context/scratch path must reproduce the plain entry points exactly,
// and results must not alias the recycled scratch.
func TestSimulateContextScratchEquivalence(t *testing.T) {
	s := testSystem(t)
	d := testDesign(t)
	cfd, _ := workload.Get("CFD")
	gemm, _ := workload.Get("GEMM")
	T, dt := 10e-6, 1e-9

	ref, err := s.SimulateOffChipVRM(cfd, T, dt)
	if err != nil {
		t.Fatal(err)
	}
	scr := &Scratch{}
	opt := SimOptions{KeepTrace: true, Scratch: scr}
	got, err := s.SimulateOffChipVRMContext(context.Background(), cfd, T, dt, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !sameFloats(ref.Times, got.Times) || !sameFloats(ref.VCore, got.VCore) {
		t.Fatal("off-chip: scratch path diverges from the plain path")
	}
	if !reflect.DeepEqual(ref.VStats, got.VStats) {
		t.Fatalf("off-chip: stats diverge: %+v vs %+v", got.VStats, ref.VStats)
	}

	refIVR, err := s.SimulateIVR(d, 4, cfd, T, dt)
	if err != nil {
		t.Fatal(err)
	}
	gotIVR, err := s.SimulateIVRContext(context.Background(), d, 4, cfd, T, dt, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !sameFloats(refIVR.Times, gotIVR.Times) || !sameFloats(refIVR.VCore, gotIVR.VCore) {
		t.Fatal("IVR: scratch path diverges from the plain path")
	}
	if !reflect.DeepEqual(refIVR.VStats, gotIVR.VStats) {
		t.Fatal("IVR: stats diverge")
	}

	// Reusing the same scratch for a different benchmark must not disturb the
	// earlier result (results own their storage; scratch is only workspace).
	before := append([]float64(nil), got.VCore...)
	if _, err := s.SimulateOffChipVRMContext(context.Background(), gemm, T, dt, opt); err != nil {
		t.Fatal(err)
	}
	if !sameFloats(before, got.VCore) {
		t.Fatal("result trace aliases scratch: a later simulation overwrote it")
	}
}

// Without KeepTrace, the result carries statistics but no waveform.
func TestSimulateDropsTraceWhenNotKept(t *testing.T) {
	s := testSystem(t)
	bench, _ := workload.Get("CFD")
	res, err := s.SimulateOffChipVRMContext(context.Background(), bench, 10e-6, 1e-9, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Times != nil || res.VCore != nil {
		t.Error("KeepTrace=false must drop the waveform")
	}
	if res.VStats.N == 0 || res.NoiseVpp <= 0 {
		t.Error("statistics must survive without the trace")
	}
	st := res.Stats()
	if st.N != res.VStats.N {
		t.Error("Stats() must serve the precomputed summary")
	}
	// And the summary must equal the kept-trace run's.
	kept, err := s.SimulateOffChipVRMContext(context.Background(), bench, 10e-6, 1e-9, SimOptions{KeepTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.VStats, kept.VStats) {
		t.Errorf("summary differs with/without trace retention: %+v vs %+v", res.VStats, kept.VStats)
	}
}

// Cancellation hits inside the transient integration loop, not only between
// cells: a context cancelled after a few polls stops a 20k-step simulation
// long before completion.
func TestSimulateCancellationMidCell(t *testing.T) {
	s := testSystem(t)
	d := testDesign(t)
	bench, _ := workload.Get("CFD")
	ctx := &cancelAfterCtx{Context: context.Background(), after: 2}
	if _, err := s.SimulateOffChipVRMContext(ctx, bench, 20e-6, 1e-9, SimOptions{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("off-chip simulation must stop with context.Canceled, got %v", err)
	}
	if ctx.calls < 2 {
		t.Fatalf("cancellation was never polled mid-run (%d polls)", ctx.calls)
	}
	ctx = &cancelAfterCtx{Context: context.Background(), after: 2}
	if _, err := s.SimulateIVRContext(ctx, d, 4, bench, 20e-6, 1e-9, SimOptions{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("IVR simulation must stop with context.Canceled, got %v", err)
	}
}
