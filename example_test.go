package ivory_test

import (
	"fmt"

	"ivory"
)

// Exploring a design space takes one Spec: the paper's Table 1 style
// inputs. The result is a ranked candidate list across all three converter
// families.
func ExampleExplore() {
	spec := ivory.Spec{
		NodeName: "45nm",
		VIn:      3.3,
		VOut:     1.0,
		IMax:     6,
		AreaMax:  6e-6, // 6 mm²
	}
	res, err := ivory.Explore(spec)
	if err != nil {
		fmt.Println(err)
		return
	}
	best, _ := res.BestOfKind(ivory.KindSC)
	fmt.Printf("best SC family candidate: %s\n", best.Label)
	fmt.Printf("regulates at %.2f V\n", best.Metrics.VOut)
	// Output:
	// best SC family candidate: series-parallel 3:1 / deep-trench caps / x12
	// regulates at 1.00 V
}

// The generic charge-multiplier solver characterizes any two-phase SC
// topology analytically: ideal ratio, SSL and FSL metrics.
func ExampleSeriesParallel() {
	top, err := ivory.SeriesParallel(3, 1)
	if err != nil {
		fmt.Println(err)
		return
	}
	an, err := top.Analyze()
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("ratio %.4f, sum|a_c| %.4f, sum|a_r| %.4f\n", an.Ratio, an.SumAC, an.SumAR)
	// Output:
	// ratio 0.3333, sum|a_c| 0.6667, sum|a_r| 2.3333
}

// Custom topologies are netlists of capacitors and phase-assigned switches;
// the solver derives everything else.
func ExampleTopologyBuilder() {
	b := ivory.NewTopologyBuilder("my 2:1")
	p := b.NewNode()
	n := b.NewNode()
	b.AddCap(p, n, "C1")
	b.AddSwitch(ivory.VinNode, p, ivory.Phi1, "s1")
	b.AddSwitch(n, ivory.VoutNode, ivory.Phi1, "s2")
	b.AddSwitch(p, ivory.VoutNode, ivory.Phi2, "s3")
	b.AddSwitch(n, ivory.GndNode, ivory.Phi2, "s4")
	an, err := b.Build().Analyze()
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("M = %.3f with %d switches\n", an.Ratio, an.NumSwitches)
	// Output:
	// M = 0.500 with 4 switches
}

// The technology database ships eight nodes and accepts user-defined ones.
func ExampleTechNodes() {
	names := ivory.TechNodes()
	fmt.Println(len(names) >= 8)
	node, _ := ivory.LookupNode("45nm")
	fmt.Printf("45nm Vdd = %.2f V\n", node.VddNominal)
	// Output:
	// true
	// 45nm Vdd = 1.00 V
}
