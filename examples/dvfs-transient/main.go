// DVFS transient: use the combined cycle-by-cycle + in-cycle dynamic model
// to watch an SC IVR execute a fast per-core DVFS step — the headline
// capability distributed IVRs enable (paper §1) — while the load current
// follows the voltage change.
//
//	go run ./examples/dvfs-transient
package main

import (
	"fmt"
	"log"

	"ivory"
)

func main() {
	// A per-core IVR: 3.3 V in, nominally 0.85 V out, 6 A core.
	spec := ivory.Spec{
		NodeName: "45nm",
		VIn:      3.3,
		VOut:     0.95, // explore with headroom for the DVFS high state
		IMax:     6,
		AreaMax:  5e-6,
	}
	res, err := ivory.Explore(spec)
	if err != nil {
		log.Fatal(err)
	}
	cand, ok := res.BestOfKind(ivory.KindSC)
	if !ok {
		log.Fatal("no SC design")
	}
	params, err := ivory.SCDynamicParams(cand.SC, spec.IMax)
	if err != nil {
		log.Fatal(err)
	}
	params.Interleave = 16
	sim := &ivory.SCSimulator{P: params}

	// DVFS schedule: low state 0.75 V, step to 0.95 V at 2 µs, back down
	// at 6 µs. The load model ties current draw to the supply voltage.
	load := ivory.LoadModel{PNominal: 5, VNominal: 0.95, LeakFraction: 0.25, FrequencyTracksV: true}
	vref := func(t float64) float64 {
		if t < 2e-6 || t >= 6e-6 {
			return 0.75
		}
		return 0.95
	}
	iLoad := func(t float64) float64 {
		return load.Current(0.8, vref(t)) // 80% activity at the scheduled V
	}

	T := 8e-6
	dt := 1 / (params.FClk * float64(params.Interleave))
	tr, err := sim.Run(iLoad, vref, T, dt)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("design: %s (pump clock %.0f MHz, %d slices)\n",
		cand.Label, params.FClk/1e6, params.Interleave)
	fmt.Printf("%d samples over %.0f us, %d pump events (avg fsw %.1f MHz)\n\n",
		len(tr.Times), T*1e6, tr.SwitchEvents, tr.AvgFSw/1e6)

	// Measure the up-transition time: first sample after t=2us within 2%
	// of the 0.95 V target.
	var tUp float64
	for i, tt := range tr.Times {
		if tt > 2e-6 && tr.V[i] > 0.95*0.98 {
			tUp = tt - 2e-6
			break
		}
	}
	fmt.Printf("0.75 -> 0.95 V transition completed in %.0f ns\n", tUp*1e9)

	// Print a coarse waveform.
	fmt.Println("\n t(us)   Vref    Vout    I(A)")
	step := len(tr.Times) / 32
	for i := 0; i < len(tr.Times); i += step {
		tt := tr.Times[i]
		fmt.Printf("%6.2f  %5.2f  %6.4f  %5.2f\n", tt*1e6, vref(tt), tr.V[i], iLoad(tt))
	}
}
