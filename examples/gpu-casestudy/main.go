// GPU case study: the paper's §5 walk-through on the public API — explore
// the converter design space for a 4-SM embedded GPU, then compare the
// voltage noise of off-chip VRM vs centralized vs distributed IVR power
// delivery under a synthetic Rodinia-style workload.
//
//	go run ./examples/gpu-casestudy
package main

import (
	"fmt"
	"log"

	"ivory"
)

func main() {
	// Table 1 parameters: 3.3 V board rail, ~1 V converter output, 20 W
	// across four SMs, 20 mm² of IVR area at 45 nm.
	spec := ivory.CaseStudySpec("45nm")

	// Step 1 — static design space exploration across distribution counts.
	tbl, err := ivory.ExploreDistribution(spec, []int{1, 2, 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(tbl.Format())

	// Step 2 — build the PDS and run the workload-driven noise analysis.
	net, err := ivory.TypicalOffChipPDN(60e-9, 1.2e-3)
	if err != nil {
		log.Fatal(err)
	}
	sys := &ivory.PDSSystem{
		Cores:      4,
		TDPPerCore: 5,
		VNominal:   0.85,
		VSource:    3.3,
		Load:       ivory.LoadModel{PNominal: 5, VNominal: 0.85, LeakFraction: 0.25},
		GridR:      3.5e-3,
		GridL:      50e-12,
		Network:    net,
		Seed:       1,
	}
	res, err := ivory.Explore(spec)
	if err != nil {
		log.Fatal(err)
	}
	cand, ok := res.BestOfKind(ivory.KindSC)
	if !ok {
		log.Fatal("no SC design")
	}
	cfg := cand.SC.Config()
	cfg.VOut = sys.VNominal
	cfg.Interleave = 32
	cfg.FSwMax = 500e6
	design, err := ivory.NewSC(cfg)
	if err != nil {
		log.Fatal(err)
	}

	bench, err := ivory.GetBenchmark("CFD")
	if err != nil {
		log.Fatal(err)
	}
	T, dt := 20e-6, 1e-9
	fmt.Printf("\nVoltage noise running %s for %.0f us:\n", bench.Name, T*1e6)
	off, err := sys.SimulateOffChipVRM(bench, T, dt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %-22s %5.1f mVpp (worst droop %5.1f mV)\n", off.Config, off.NoiseVpp*1e3, off.WorstDroop*1e3)
	for _, n := range []int{1, 2, 4} {
		r, err := sys.SimulateIVR(design, n, bench, T, dt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-22s %5.1f mVpp (worst droop %5.1f mV)\n", r.Config, r.NoiseVpp*1e3, r.WorstDroop*1e3)
	}

	// Step 3 — the delivery-efficiency consequence: power breakdowns with
	// the measured guardbands.
	fmt.Println("\nPower-delivery efficiency with measured guardbands:")
	offB, err := sys.PowerBreakdown(ivory.BreakdownParams{
		Config: "off-chip VRM", Margin: off.WorstDroop,
		VRMEfficiency: 0.89, NumIVRs: 0,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %-22s %.1f%% (P_src %.1f W for %.0f W of compute)\n",
		offB.Config, offB.Efficiency*100, offB.PSource, offB.PCoreUseful)
	mIVR, err := design.Evaluate(spec.IMax)
	if err != nil {
		log.Fatal(err)
	}
	for _, n := range []int{1, 2, 4} {
		r, err := sys.SimulateIVR(design, n, bench, T, dt)
		if err != nil {
			log.Fatal(err)
		}
		b, err := sys.PowerBreakdown(ivory.BreakdownParams{
			Config: r.Config, Margin: r.WorstDroop,
			IVREfficiency: mIVR.Efficiency, VRMEfficiency: 0.97, NumIVRs: n,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-22s %.1f%% (P_src %.1f W)\n", b.Config, b.Efficiency*100, b.PSource)
	}
}
