// Topology sweep: analyze the charge-multiplier vectors of every built-in
// switched-capacitor family and compare their SSL/FSL cost metrics — the
// numbers that drive Eq. (1) of the paper and ultimately decide which
// topology wins a design-space exploration.
//
//	go run ./examples/topology-sweep
package main

import (
	"fmt"
	"log"

	"ivory"
)

func main() {
	type gen struct {
		name string
		make func() (*ivory.Topology, error)
	}
	gens := []gen{
		{"series-parallel 2:1", func() (*ivory.Topology, error) { return ivory.SeriesParallel(2, 1) }},
		{"series-parallel 3:1", func() (*ivory.Topology, error) { return ivory.SeriesParallel(3, 1) }},
		{"series-parallel 3:2", func() (*ivory.Topology, error) { return ivory.SeriesParallel(3, 2) }},
		{"series-parallel 4:1", func() (*ivory.Topology, error) { return ivory.SeriesParallel(4, 1) }},
		{"ladder 3:1", func() (*ivory.Topology, error) { return ivory.Ladder(3, 1) }},
		{"ladder 5:2", func() (*ivory.Topology, error) { return ivory.Ladder(5, 2) }},
		{"ladder 7:3", func() (*ivory.Topology, error) { return ivory.Ladder(7, 3) }},
		{"dickson 4:1", func() (*ivory.Topology, error) { return ivory.Dickson(4) }},
		{"fibonacci (3 stages)", func() (*ivory.Topology, error) { return ivory.Fibonacci(3) }},
		{"doubler 8:1", func() (*ivory.Topology, error) { return ivory.Doubler(3) }},
	}
	fmt.Printf("%-22s %8s %6s %8s %6s %8s %10s\n",
		"topology", "ratio", "caps", "Σ|a_c|", "sw", "Σ|a_r|", "SSLxFSL")
	for _, g := range gens {
		top, err := g.make()
		if err != nil {
			log.Fatal(err)
		}
		an, err := top.Analyze()
		if err != nil {
			log.Fatal(err)
		}
		// The SSL*FSL product is a size-independent figure of merit: lower
		// means less capacitance x conductance for the same impedance.
		fom := an.SumAC * an.SumAC * an.SumAR * an.SumAR
		fmt.Printf("%-22s %8.4f %6d %8.3f %6d %8.3f %10.3f\n",
			g.name, an.Ratio, an.NumCaps, an.SumAC, an.NumSwitches, an.SumAR, fom)
	}

	// A custom user topology can be supplied directly as charge-multiplier
	// vectors (the paper's plug-in interface for advanced users).
	custom, err := ivory.CustomTopology("my 5:1 hybrid", 0.2,
		[]float64{0.4, 0.2, 0.2}, []float64{0.2, 0.2, 0.4, 0.4, 0.2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncustom %q: ratio %.2f, Σ|a_c| = %.2f, Σ|a_r| = %.2f\n",
		custom.Name, custom.Ratio, custom.SumAC, custom.SumAR)
}
