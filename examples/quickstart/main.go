// Quickstart: explore the IVR design space for a small SoC power domain
// and print the winning designs of every converter family.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ivory"
)

func main() {
	// A mobile-SoC power domain: 1.8 V rail in, 0.9 V domain, 2 A peak,
	// 3 mm² of die budget, built at 22 nm.
	spec := ivory.Spec{
		NodeName: "22nm",
		VIn:      1.8,
		VOut:     0.9,
		IMax:     2.0,
		AreaMax:  3e-6,
	}
	res, err := ivory.Explore(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Explored the design space: %d feasible candidates (%d rejected).\n\n",
		len(res.Candidates), res.Rejected)
	for _, kind := range []ivory.Kind{ivory.KindSC, ivory.KindBuck, ivory.KindLDO} {
		c, ok := res.BestOfKind(kind)
		if !ok {
			fmt.Printf("%-4s: no feasible design\n", kind)
			continue
		}
		m := c.Metrics
		fmt.Printf("%-4s: %-44s\n      eff %.1f%%  ripple %.2f mV  fsw %.1f MHz  area %.2f mm²\n",
			kind, c.Label, m.Efficiency*100, m.RippleVpp*1e3, m.FSw/1e6, m.AreaDie*1e6)
		fmt.Printf("      losses: conduction %.1f mW, gates %.1f mW, parasitic %.1f mW, control %.2f mW\n",
			m.Loss.Conduction*1e3, m.Loss.GateDrive*1e3, m.Loss.Parasitic*1e3, m.Loss.Control*1e3)
	}
	fmt.Printf("\nOverall winner: %v — %s (%.1f%% efficient)\n",
		res.Best.Kind, res.Best.Label, res.Best.Metrics.Efficiency*100)

	// The winning SC design can be inspected further: its output impedance
	// at the operating frequency, the regulation frequency at half load...
	if c, ok := res.BestOfKind(ivory.KindSC); ok {
		d := c.SC
		fHalf, err := d.RegulationFrequency(spec.IMax / 2)
		if err == nil {
			fmt.Printf("At half load the feedback settles at %.1f MHz (vs %.1f MHz at full load).\n",
				fHalf/1e6, c.Metrics.FSw/1e6)
		}
	}
}
