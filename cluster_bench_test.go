package ivory

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ivory/internal/server"
)

// Cluster-mode throughput harness: the same full exhaustive sweep pushed
// through one worker replica directly versus a coordinator fanning it out
// to two replicas. Each replica is pinned to one pool slot and one engine
// worker, so the pair represents exactly 2x the compute of the single-node
// baseline and the expected speedup on a machine with >=2 cores is ~2x
// (shard HTTP overhead is a few ms against a tens-of-ms sweep). On a
// single-core host the replicas time-share and the ratio collapses to ~1x
// — compare the two rows on the hardware the fleet actually runs on.
const clusterBenchBody = `{"spec":{"node":"45nm","vin_v":1.8,"vout_v":0.9,"imax_a":1,"area_mm2":2},"top":1}`

// bootBenchWorker starts one single-slot worker replica with caching off,
// so every iteration recomputes instead of replaying the LRU.
func bootBenchWorker(b *testing.B) *httptest.Server {
	s := server.New(server.Config{Workers: 1, QueueDepth: 64, EngineWorkers: 1, CacheEntries: -1, Role: "worker"})
	ts := httptest.NewServer(s.Handler())
	b.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return ts
}

func exploreOverHTTP(b *testing.B, url string) {
	b.Helper()
	resp, err := http.Post(url+"/v1/explore", "application/json", strings.NewReader(clusterBenchBody))
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		b.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("explore: %d", resp.StatusCode)
	}
}

func BenchmarkExploreClusterSingleNode(b *testing.B) {
	ts := bootBenchWorker(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		exploreOverHTTP(b, ts.URL)
	}
}

func BenchmarkExploreCluster2Workers(b *testing.B) {
	w1, w2 := bootBenchWorker(b), bootBenchWorker(b)
	coord := server.New(server.Config{
		Workers: 1, QueueDepth: 64, EngineWorkers: 1, CacheEntries: -1,
		Cluster: &server.ClusterConfig{Workers: []string{w1.URL, w2.URL}},
	})
	ts := httptest.NewServer(coord.Handler())
	b.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = coord.Shutdown(ctx)
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		exploreOverHTTP(b, ts.URL)
	}
}
